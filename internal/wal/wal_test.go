package wal

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestAppendIterate(t *testing.T) {
	l := NewMemLog()
	r1 := l.Append(Record{Tx: 1, Type: RecBegin})
	r2 := l.Append(Record{Tx: 1, Type: RecUpdate, Page: 7, Off: 100, Old: []byte("aa"), New: []byte("bb")})
	r3 := l.Append(Record{Tx: 1, Type: RecCommit, PrevLSN: r2})
	if !(r1 < r2 && r2 < r3) {
		t.Fatalf("LSNs not increasing: %d %d %d", r1, r2, r3)
	}
	var got []Record
	if err := l.Iterate(func(r Record) bool { got = append(got, r); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("iterated %d records", len(got))
	}
	if got[1].Page != 7 || got[1].Off != 100 || string(got[1].Old) != "aa" || string(got[1].New) != "bb" {
		t.Fatalf("record round trip: %+v", got[1])
	}
	if got[2].PrevLSN != r2 {
		t.Fatal("PrevLSN lost")
	}
	if l.Records() != 3 {
		t.Fatalf("Records = %d", l.Records())
	}
}

func TestIterateEarlyStop(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 10; i++ {
		l.Append(Record{Tx: uint64(i), Type: RecBegin})
	}
	n := 0
	l.Iterate(func(Record) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("early stop after %d", n)
	}
}

func TestFileLogPersistenceAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Tx: 1, Type: RecBegin})
	l.Append(Record{Tx: 1, Type: RecUpdate, Page: 3, Off: 8, New: []byte{1, 2, 3}})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// An unflushed record is lost at the crash.
	l.Append(Record{Tx: 1, Type: RecCommit})
	l.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 2 {
		t.Fatalf("recovered %d records, want 2 (commit was never forced)", l2.Records())
	}
}

func TestDiscardUnflushed(t *testing.T) {
	l := NewMemLog()
	l.Append(Record{Tx: 1, Type: RecBegin})
	l.Flush()
	l.Append(Record{Tx: 1, Type: RecCommit})
	l.DiscardUnflushed()
	if l.FlushedLSN() != LSN(1+HeaderBytes) {
		t.Fatalf("FlushedLSN = %d", l.FlushedLSN())
	}
	n := 0
	l.Iterate(func(Record) bool { n++; return true })
	if n != 1 {
		t.Fatalf("after discard: %d records", n)
	}
}

// memStore is a trivial PageStore for recovery tests.
type memStore struct{ pages map[uint32][]byte }

func newMemStore() *memStore { return &memStore{pages: map[uint32][]byte{}} }

func (m *memStore) page(id uint32) []byte {
	if m.pages[id] == nil {
		m.pages[id] = make([]byte, 8192)
	}
	return m.pages[id]
}
func (m *memStore) ReadPage(id uint32, buf []byte) error  { copy(buf, m.page(id)); return nil }
func (m *memStore) WritePage(id uint32, buf []byte) error { copy(m.page(id), buf); return nil }

func lsnOf(buf []byte) uint64       { return binary.LittleEndian.Uint64(buf[:8]) }
func setLSN(buf []byte, lsn uint64) { binary.LittleEndian.PutUint64(buf[:8], lsn) }

func TestRecoverRedoWinner(t *testing.T) {
	l := NewMemLog()
	store := newMemStore()
	l.Append(Record{Tx: 1, Type: RecBegin})
	l.Append(Record{Tx: 1, Type: RecUpdate, Page: 5, Off: 100, Old: []byte{0, 0}, New: []byte{7, 8}})
	l.Append(Record{Tx: 1, Type: RecCommit})
	// Crash before the page ever reached disk: page 5 is all zeroes.
	winners, losers, _, err := Recover(l, store, 8192, lsnOf, setLSN)
	if err != nil {
		t.Fatal(err)
	}
	if !winners[1] || len(losers) != 0 {
		t.Fatalf("winners=%v losers=%v", winners, losers)
	}
	p := store.page(5)
	if p[100] != 7 || p[101] != 8 {
		t.Fatalf("redo missing: %v", p[100:102])
	}
}

func TestRecoverUndoLoser(t *testing.T) {
	l := NewMemLog()
	store := newMemStore()
	l.Append(Record{Tx: 2, Type: RecBegin})
	rec := Record{Tx: 2, Type: RecUpdate, Page: 9, Off: 50, Old: []byte{1, 1}, New: []byte{9, 9}}
	lsn := l.Append(rec)
	// The dirty page was stolen to disk before the crash; no commit follows.
	p := store.page(9)
	p[50], p[51] = 9, 9
	setLSN(p, uint64(lsn))
	winners, losers, _, err := Recover(l, store, 8192, lsnOf, setLSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 0 || !losers[2] {
		t.Fatalf("winners=%v losers=%v", winners, losers)
	}
	if p[50] != 1 || p[51] != 1 {
		t.Fatalf("undo missing: %v", p[50:52])
	}
	// A CLR and a final abort record are in the log.
	var types []RecType
	l.Iterate(func(r Record) bool { types = append(types, r.Type); return true })
	found := map[RecType]bool{}
	for _, ty := range types {
		found[ty] = true
	}
	if !found[RecCLR] || !found[RecAbort] {
		t.Fatalf("log after recovery: %v", types)
	}
}

func TestRecoverIdempotent(t *testing.T) {
	l := NewMemLog()
	store := newMemStore()
	l.Append(Record{Tx: 1, Type: RecBegin})
	l.Append(Record{Tx: 1, Type: RecUpdate, Page: 3, Off: 40, Old: []byte{0}, New: []byte{5}})
	l.Append(Record{Tx: 1, Type: RecCommit})
	if _, _, _, err := Recover(l, store, 8192, lsnOf, setLSN); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), store.page(3)...)
	if _, _, _, err := Recover(l, store, 8192, lsnOf, setLSN); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, store.page(3)) {
		t.Fatal("second recovery changed the page")
	}
}

// A participant's prepared transaction with no decision stays in doubt:
// redone like a winner, never undone, no RecAbort appended.
func TestRecoverInDoubtParticipant(t *testing.T) {
	l := NewMemLog()
	store := newMemStore()
	coordTx := make([]byte, 8)
	binary.LittleEndian.PutUint64(coordTx, 77)
	l.Append(Record{Tx: 4, Type: RecBegin})
	l.Append(Record{Tx: 4, Type: RecUpdate, Page: 6, Off: 200, Old: []byte{0, 0}, New: []byte{3, 4}})
	prepLSN := l.Append(Record{Tx: 4, Type: RecPrepare, Page: 2, New: coordTx})
	winners, losers, indoubt, err := Recover(l, store, 8192, lsnOf, setLSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 0 || len(losers) != 0 {
		t.Fatalf("winners=%v losers=%v", winners, losers)
	}
	d := indoubt[4]
	if d == nil {
		t.Fatal("prepared tx not reported in doubt")
	}
	if d.CoordShard != 2 || d.CoordTx != 77 || d.PrepareLSN != prepLSN {
		t.Fatalf("in-doubt info: %+v", d)
	}
	if len(d.Pages) != 1 || d.Pages[0] != 6 {
		t.Fatalf("in-doubt pages: %v", d.Pages)
	}
	p := store.page(6)
	if p[200] != 3 || p[201] != 4 {
		t.Fatalf("in-doubt update not redone: %v", p[200:202])
	}
	l.Iterate(func(r Record) bool {
		if r.Type == RecAbort || r.Type == RecCLR {
			t.Fatalf("in-doubt tx resolved by recovery: %v", r.Type)
		}
		return true
	})
}

// The coordinator's own prepare without a decision record is presumed
// aborted at restart: it is a normal loser, undone with CLRs. A decision
// record, conversely, commits the transaction outright.
func TestRecoverCoordinatorPresumesAbort(t *testing.T) {
	l := NewMemLog()
	store := newMemStore()
	// Tx 5: coordinator-side prepare, crash before decision -> abort.
	l.Append(Record{Tx: 5, Type: RecBegin})
	lsn := l.Append(Record{Tx: 5, Type: RecUpdate, Page: 7, Off: 10, Old: []byte{1}, New: []byte{9}})
	l.Append(Record{Tx: 5, Type: RecPrepare, Page: 0, Off: PrepareCoord})
	p := store.page(7)
	p[10] = 9
	setLSN(p, uint64(lsn))
	// Tx 6: prepare followed by decision -> winner.
	l.Append(Record{Tx: 6, Type: RecBegin})
	l.Append(Record{Tx: 6, Type: RecUpdate, Page: 8, Off: 20, Old: []byte{0}, New: []byte{6}})
	l.Append(Record{Tx: 6, Type: RecPrepare, Page: 0, Off: PrepareCoord})
	l.Append(Record{Tx: 6, Type: RecDecision})
	winners, losers, indoubt, err := Recover(l, store, 8192, lsnOf, setLSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(indoubt) != 0 {
		t.Fatalf("coordinator prepares held in doubt: %v", indoubt)
	}
	if !losers[5] || !winners[6] {
		t.Fatalf("winners=%v losers=%v", winners, losers)
	}
	if store.page(7)[10] != 1 {
		t.Fatalf("presumed-abort undo missing: %d", store.page(7)[10])
	}
	if store.page(8)[20] != 6 {
		t.Fatalf("decision redo missing: %d", store.page(8)[20])
	}
}

func TestCorruptRecordDetected(t *testing.T) {
	l := NewMemLog()
	l.Append(Record{Tx: 1, Type: RecUpdate, Page: 1, Off: 0, New: []byte{1}})
	l.buf[HeaderBytes] ^= 0xFF // flip a payload byte
	err := l.Iterate(func(Record) bool { return true })
	if err == nil {
		t.Fatal("corrupt record passed checksum")
	}
}

// Property: marshal/unmarshal round-trips arbitrary records.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(tx uint64, pg uint32, off uint16, old, new []byte) bool {
		if len(old) > 4000 {
			old = old[:4000]
		}
		if len(new) > 4000 {
			new = new[:4000]
		}
		r := Record{LSN: 1, Tx: tx, Type: RecUpdate, Page: pg, Off: off, Old: old, New: new}
		buf := make([]byte, r.size())
		r.marshal(buf)
		got, n, err := unmarshal(buf)
		if err != nil || n != r.size() {
			return false
		}
		return got.Tx == tx && got.Page == pg && got.Off == off &&
			bytes.Equal(got.Old, old) && bytes.Equal(got.New, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any series of committed single-byte updates applied only to
// the log (never the store), recovery reconstructs the final byte values.
func TestRecoverReplaysHistory(t *testing.T) {
	f := func(writes []uint16) bool {
		l := NewMemLog()
		store := newMemStore()
		want := map[uint16]byte{}
		tx := uint64(1)
		l.Append(Record{Tx: tx, Type: RecBegin})
		for i, w := range writes {
			off := 16 + w%8000
			val := byte(i + 1)
			l.Append(Record{Tx: tx, Type: RecUpdate, Page: 2, Off: off,
				Old: []byte{want[off]}, New: []byte{val}})
			want[off] = val
		}
		l.Append(Record{Tx: tx, Type: RecCommit})
		if _, _, _, err := Recover(l, store, 8192, lsnOf, setLSN); err != nil {
			return false
		}
		p := store.page(2)
		for off, val := range want {
			if p[off] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatePreservesLSNMonotonicity(t *testing.T) {
	l := NewMemLog()
	lsn1 := l.Append(Record{Tx: 1, Type: RecBegin})
	l.Append(Record{Tx: 1, Type: RecCommit})
	l.Flush()
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l.Iterate(func(Record) bool { n++; return true })
	if n != 0 {
		t.Fatalf("%d records after truncate", n)
	}
	lsn2 := l.Append(Record{Tx: 2, Type: RecBegin})
	if lsn2 <= lsn1 {
		t.Fatalf("LSN went backwards after truncate: %d <= %d", lsn2, lsn1)
	}
}

func TestTruncatedFileLogReopens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Tx: 1, Type: RecBegin})
	l.Append(Record{Tx: 1, Type: RecCommit})
	l.Flush()
	l.Truncate()
	lsnA := l.Append(Record{Tx: 2, Type: RecBegin})
	l.Flush()
	l.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 1 {
		t.Fatalf("reopened with %d records", l2.Records())
	}
	// New LSNs continue past the pre-truncation space.
	lsnB := l2.Append(Record{Tx: 3, Type: RecBegin})
	if lsnB <= lsnA {
		t.Fatalf("LSN went backwards across reopen: %d <= %d", lsnB, lsnA)
	}
}
