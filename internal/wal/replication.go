package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// This file is the replication face of the log: a subscription cursor over
// the durable byte stream (what a leader ships), raw record splicing (what
// a follower applies), and wholesale snapshot installation (how a follower
// is seeded when its cursor has fallen off the retained generation).
//
// The shipping contract is byte identity: a follower's log holds exactly
// the leader's serialized bytes at exactly the same LSNs, so "durable
// through LSN x" means the same thing on every replica and a promoted
// follower can run ordinary restart recovery over its local copy.

// ErrCompacted reports a replication cursor that points below the log's
// retained generation: a checkpoint truncated those records away, so the
// consumer must be re-seeded from a snapshot rather than a byte-range ship.
var ErrCompacted = errors.New("wal: cursor predates retained log (snapshot required)")

// ErrDiverged reports shipped bytes that disagree with the local log at the
// same LSNs — two logs that stopped being byte-identical (a fenced leader's
// stale tail, typically). The shipper's recovery is a snapshot reset.
var ErrDiverged = errors.New("wal: shipped bytes diverge from local log")

// StartLSN returns the first LSN of the retained generation. Cursors below
// it are compacted.
func (l *Log) StartLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(1 + l.base)
}

// End returns the LSN the next appended record will receive (exclusive end
// of the log's LSN space, durable or not).
func (l *Log) End() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.endLocked()
}

func (l *Log) endLocked() LSN { return LSN(1 + l.base + len(l.buf)) }

// durableCondLocked lazily creates the durability broadcast condition; the
// log has no constructor that could do it eagerly (NewMemLog is a literal).
func (l *Log) durableCondLocked() *sync.Cond {
	if l.durable == nil {
		l.durable = sync.NewCond(&l.mu)
	}
	return l.durable
}

// signalDurableLocked wakes subscription waiters and notify channels after
// the durable prefix (or the retained generation) changed.
func (l *Log) signalDurableLocked() {
	if l.durable != nil {
		l.durable.Broadcast()
	}
	for ch := range l.notify {
		select {
		case ch <- struct{}{}:
		default: // already signaled; the receiver will see the latest state
		}
	}
}

// NotifyDurable registers ch for a non-blocking signal whenever the durable
// prefix advances, the log truncates, or the log closes. A buffered channel
// of capacity one never misses an edge; the receiver re-reads log state
// rather than counting signals. Composes with select, unlike Wait.
func (l *Log) NotifyDurable(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.notify == nil {
		l.notify = make(map[chan struct{}]struct{})
	}
	l.notify[ch] = struct{}{}
}

// StopNotify removes a channel registered with NotifyDurable.
func (l *Log) StopNotify(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.notify, ch)
}

// Subscription is a cursor over the log's durable byte stream. It is owned
// by one consumer goroutine; the log it reads is shared.
type Subscription struct {
	l   *Log
	pos LSN
}

// Subscribe opens a cursor positioned at from (NilLSN means the beginning
// of LSN space). Whether the position is still retained is discovered at
// the first Next — a cursor below StartLSN reports ErrCompacted.
func (l *Log) Subscribe(from LSN) *Subscription {
	if from == NilLSN {
		from = 1
	}
	return &Subscription{l: l, pos: from}
}

// Pos returns the cursor position: the LSN of the next byte Next will return.
func (s *Subscription) Pos() LSN { return s.pos }

// Next returns the next durable chunk at the cursor — whole records only,
// at most max bytes (0 = unlimited) — and advances past it. A nil chunk
// means the cursor has caught up with the durable prefix. ErrCompacted
// means the position was truncated away and the consumer needs a snapshot.
func (s *Subscription) Next(max int) ([]byte, error) {
	chunk, err := s.l.DurableFrom(s.pos, max)
	if err != nil {
		return nil, err
	}
	s.pos += LSN(len(chunk))
	if len(chunk) == 0 {
		return nil, nil
	}
	return chunk, nil
}

// Wait blocks until the log has durable content past the cursor (or the
// cursor's position has been compacted — either way Next has something to
// say). It returns false once the log is closed.
func (s *Subscription) Wait() bool {
	l := s.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return false
		}
		if s.pos < LSN(1+l.base) {
			return true // compacted: Next reports ErrCompacted
		}
		if s.pos < LSN(1+l.base+l.flushed) {
			return true
		}
		l.durableCondLocked().Wait()
	}
}

// DurableFrom copies durable log content beginning at the record boundary
// from, limited to max bytes (0 = unlimited) and always ending on a record
// boundary, so the chunk can be CRC-verified and spliced by AppendRaw. A
// nil chunk means nothing durable lies past from.
func (l *Log) DurableFrom(from LSN, max int) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := LSN(1 + l.base)
	if from < start {
		return nil, ErrCompacted
	}
	off := int(from - start)
	if off >= l.flushed {
		return nil, nil
	}
	avail := l.buf[off:l.flushed]
	// Walk record boundaries: the durable prefix can end mid-record after
	// an injected torn flush, and a capped chunk must not split a record.
	end := 0
	for end < len(avail) {
		_, n, err := unmarshal(avail[end:])
		if err != nil {
			break // torn durable tail: ship only what parses
		}
		if max > 0 && end+n > max {
			break
		}
		end += n
	}
	if end == 0 {
		return nil, nil
	}
	return append([]byte(nil), avail[:end]...), nil
}

// AppendRaw splices pre-serialized records — shipped from a peer log whose
// bytes this log mirrors — whose first record sits at start. Retransmits
// are idempotent: bytes already present are verified, not re-appended. The
// records are CRC-checked and must carry exactly the LSNs their offsets
// imply; a start beyond End is a gap (the shipper must back up); content
// that disagrees with bytes already present is ErrDiverged (the shipper
// must snapshot-reset). The splice is buffered, not durable — the caller
// flushes before acknowledging.
func (l *Log) AppendRaw(start LSN, chunk []byte) error {
	if len(chunk) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if start < LSN(1+l.base) {
		return ErrCompacted
	}
	end := l.endLocked()
	if start > end {
		return fmt.Errorf("wal: ship gap: chunk starts at %d, log ends at %d", uint64(start), uint64(end))
	}
	overlap := int(end - start)
	// Validate every record before mutating: parse + CRC via unmarshal,
	// contiguous LSNs, and the overlap boundary landing on a record edge.
	pos := start
	recs := int64(0)
	boundaryOK := overlap == 0
	for off := 0; off < len(chunk); {
		rec, n, err := unmarshal(chunk[off:])
		if err != nil {
			return fmt.Errorf("wal: shipped chunk at %d: %w", uint64(pos), err)
		}
		if rec.LSN != pos {
			return fmt.Errorf("wal: shipped record carries LSN %d at position %d", uint64(rec.LSN), uint64(pos))
		}
		if off == overlap {
			boundaryOK = true
		}
		if off >= overlap {
			recs++
		}
		off += n
		pos += LSN(n)
	}
	if overlap >= len(chunk) {
		// Full retransmit: nothing new, but the bytes must agree.
		off := int(start - LSN(1+l.base))
		if !bytes.Equal(l.buf[off:off+len(chunk)], chunk) {
			return ErrDiverged
		}
		return nil
	}
	if !boundaryOK {
		return ErrDiverged // our tail ends inside one of the shipped records
	}
	if overlap > 0 {
		off := int(start - LSN(1+l.base))
		if !bytes.Equal(l.buf[off:off+overlap], chunk[:overlap]) {
			return ErrDiverged
		}
	}
	l.buf = append(l.buf, chunk[overlap:]...)
	l.records += recs
	l.bytes += int64(len(chunk) - overlap)
	return nil
}

// LoadSnapshot replaces the log's retained content wholesale: generations
// before start are considered truncated (never to be reused, exactly as
// Truncate guarantees), and content becomes the retained bytes, flushed to
// the backing file. This is how a follower is seeded when incremental
// shipping cannot reach it (fresh replica, or its cursor was compacted).
func (l *Log) LoadSnapshot(start LSN, content []byte) error {
	if start == NilLSN {
		return fmt.Errorf("wal: snapshot start at nil LSN")
	}
	pos := start
	recs := int64(0)
	for off := 0; off < len(content); {
		rec, n, err := unmarshal(content[off:])
		if err != nil {
			return fmt.Errorf("wal: snapshot content at %d: %w", uint64(pos), err)
		}
		if rec.LSN != pos {
			return fmt.Errorf("wal: snapshot record carries LSN %d at position %d", uint64(rec.LSN), uint64(pos))
		}
		off += n
		pos += LSN(n)
		recs++
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	l.base = int(start) - 1
	l.buf = append(l.buf[:0], content...)
	l.flushed = 0
	l.records = recs
	l.bytes = int64(len(content))
	if l.file != nil {
		if err := l.file.Truncate(0); err != nil {
			return err
		}
	}
	if err := l.flushLocked(len(l.buf)); err != nil {
		return err
	}
	l.signalDurableLocked()
	return nil
}
