// Package oo7 implements the OO7 benchmark (Carey, DeWitt, Naughton,
// SIGMOD 1993) exactly as the paper uses it: the database generator for the
// small and medium configurations, the traversals T1, T2A/B/C, T3A/B/C, T6,
// T7, T8, T9, and the queries Q1–Q5.
//
// Everything is written once against a store-neutral driver interface, so
// the identical benchmark code runs over QuickStore, QuickStore-with-big-
// objects (QS-B), and the E baseline — the paper's apples-to-apples
// requirement.
package oo7

import (
	"quickstore/internal/sim"
)

// Ref is a driver-opaque persistent reference. 0 is nil.
type Ref uint64

// NilRef is the null reference.
const NilRef Ref = 0

// TypeID indexes the OO7 schema types.
type TypeID int

// Cluster is a driver placement cursor.
type Cluster interface {
	// Break forces the next allocation onto a fresh page.
	Break()
}

// Index is a persistent B-tree index handle. Keys are int64 or string,
// values are references. Duplicate keys are allowed.
type Index interface {
	InsertInt(k int64, r Ref)
	LookupInt(k int64) []Ref
	ScanInt(lo, hi int64, fn func(k int64, r Ref) bool)
	DeleteInt(k int64, r Ref)
	InsertString(k string, r Ref)
	LookupString(k string) []Ref
	DeleteString(k string, r Ref)
}

// DB is the navigational store interface the benchmark runs against. All
// accessors latch the first error (like bufio.Scanner); operations check
// Err once at their end rather than after every field access, keeping the
// traversal code shaped like the original C++.
type DB interface {
	// Name identifies the system ("QS", "QS-B", "E") in reports.
	Name() string

	Begin() error
	Commit() error
	Abort() error

	SetRoot(name string, r Ref)
	Root(name string) Ref

	NewCluster() Cluster
	// Alloc creates an object of type t with extra trailing bytes (the
	// document text tail). Pointer fields start nil.
	Alloc(cl Cluster, t TypeID, extra int) Ref
	// AllocLarge creates a multi-page bulk object (the Manual, and
	// documents too big for one page).
	AllocLarge(cl Cluster, size uint64) Ref

	// Delete removes the object at r (type t names its layout). Space is
	// not reclaimed; dangling references behave as in Section 4.5.2.
	Delete(r Ref, t TypeID)

	GetI32(r Ref, t TypeID, field int) int32
	SetI32(r Ref, t TypeID, field int, v int32)
	GetRef(r Ref, t TypeID, field int) Ref
	SetRef(r Ref, t TypeID, field int, v Ref)
	GetBytes(r Ref, t TypeID, field int, buf []byte)
	SetBytes(r Ref, t TypeID, field int, data []byte)
	// Tail accesses the variable bytes following the fixed layout.
	SetTail(r Ref, t TypeID, data []byte)
	GetTailByte(r Ref, t TypeID, i int) byte

	// WriteLarge bulk-loads a large object; ReadLargeByte reads one
	// character (per-character cost is the point of T8/T9).
	WriteLarge(r Ref, data []byte, off uint64)
	ReadLargeByte(r Ref, off uint64) byte
	LargeSize(r Ref) uint64

	CreateIndex(name string) Index
	Index(name string) Index

	// Err returns the first error latched by any accessor since the last
	// ClearErr; operations propagate it.
	Err() error
	ClearErr()

	Clock() *sim.Clock
}

// chargeIter accounts a transient iterator allocation (the paper's malloc
// bucket in Table 7); both systems pay it identically.
func chargeIter(db DB) { db.Clock().Charge(sim.CtrIterAlloc, 1) }

// chargePartSet accounts one visited-set operation (Table 7's part set
// bucket).
func chargePartSet(db DB) { db.Clock().Charge(sim.CtrPartSetOp, 1) }
