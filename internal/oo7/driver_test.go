package oo7

import (
	"strings"
	"testing"
)

// TestErrorLatching verifies the bufio.Scanner-style error discipline both
// drivers implement: the first error sticks, later accessors are inert, and
// Commit surfaces it (after aborting) rather than persisting garbage.
func TestErrorLatching(t *testing.T) {
	p := Tiny()
	for _, name := range []string{"QS", "E"} {
		sys := buildSystem(t, name, p)
		db := sys.open(64)
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		// A missing root latches an error.
		r := db.Root("no-such-root")
		if r != NilRef {
			t.Errorf("%s: missing root returned %d", name, r)
		}
		if db.Err() == nil {
			t.Fatalf("%s: error not latched", name)
		}
		// Commit must refuse and roll back.
		err := db.Commit()
		if err == nil || !strings.Contains(err.Error(), "latched") {
			t.Fatalf("%s: commit with latched error: %v", name, err)
		}
		// The session recovers after ClearErr + a fresh transaction.
		db.ClearErr()
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		if db.Root("module") == NilRef {
			t.Fatalf("%s: module root lost", name)
		}
		if err := db.Err(); err != nil {
			t.Fatalf("%s: unexpected latched error: %v", name, err)
		}
		if err := db.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMissingIndexLatches ensures unknown index names degrade to inert
// handles with a latched error rather than panicking.
func TestMissingIndexLatches(t *testing.T) {
	p := Tiny()
	for _, name := range []string{"QS", "E"} {
		sys := buildSystem(t, name, p)
		db := sys.open(64)
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		ix := db.Index("no-such-index")
		if got := ix.LookupInt(1); got != nil {
			t.Errorf("%s: lookup on missing index returned %v", name, got)
		}
		ix.InsertInt(1, 42)    // must not panic
		ix.DeleteInt(1, 42)    // must not panic
		ix.ScanInt(0, 10, nil) // must not panic (nil fn unreachable: no tree)
		if db.Err() == nil {
			t.Errorf("%s: missing index did not latch", name)
		}
		db.ClearErr()
		_ = db.Abort()
	}
}

// TestRefsSurviveLayoutDifferences reads the same logical field through all
// three layouts and checks the values agree — the schema indirection that
// makes one benchmark code path serve three physical formats.
func TestRefsSurviveLayoutDifferences(t *testing.T) {
	p := Tiny()
	systems := buildAll(t, p)
	for _, sys := range systems {
		db := sys.open(64)
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		module := db.Root("module")
		man := db.GetRef(module, TModule, ModManual)
		if man == NilRef {
			t.Fatalf("%s: module has no manual", sys.name)
		}
		if got := db.LargeSize(man); got != uint64(p.ManualSize) {
			t.Errorf("%s: manual size %d, want %d", sys.name, got, p.ManualSize)
		}
		if got := db.GetI32(module, TModule, ModID); got != 1 {
			t.Errorf("%s: module id %d", sys.name, got)
		}
		// Round-trip a bytes field.
		refs := db.Index(IdxPartID).LookupInt(1)
		if len(refs) != 1 {
			t.Fatalf("%s: part 1 missing", sys.name)
		}
		var typ [10]byte
		db.GetBytes(refs[0], TAtomicPart, APartType, typ[:])
		if !strings.HasPrefix(string(typ[:]), "type") {
			t.Errorf("%s: part type field %q", sys.name, typ)
		}
		if err := db.Err(); err != nil {
			t.Fatal(err)
		}
		if err := db.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTinyParamsShape sanity-checks the derived parameter helpers.
func TestTinyParamsShape(t *testing.T) {
	p := Tiny()
	if p.NumAtomicParts() != p.NumCompPerModule*p.NumAtomicPerComp {
		t.Fatal("NumAtomicParts inconsistent")
	}
	// levels L with fanout f: assemblies = (f^L - 1) / (f - 1).
	want := 1
	pow := 1
	for l := 1; l < p.NumAssmLevels; l++ {
		pow *= p.NumAssmPerAssm
		want += pow
	}
	if p.NumAssemblies() != want {
		t.Fatalf("NumAssemblies = %d, want %d", p.NumAssemblies(), want)
	}
	if p.NumBaseAssemblies() != pow {
		t.Fatalf("NumBaseAssemblies = %d, want %d", p.NumBaseAssemblies(), pow)
	}
	if oo7SeedsDiffer := Small().Seed == Medium().Seed; !oo7SeedsDiffer {
		t.Log("small and medium share a seed (by design)")
	}
	if ExpectedManualCount(0) != 0 {
		t.Fatal("empty manual has occurrences")
	}
	if ExpectedManualCount(1000) <= 0 {
		t.Fatal("probe character never occurs")
	}
}
