package oo7

import (
	"fmt"
	"math/rand"
)

// Params are the OO7 database parameters (Table 1 of the paper).
type Params struct {
	NumAtomicPerComp int
	NumConnPerAtomic int
	DocumentSize     int
	ManualSize       int
	NumCompPerModule int
	NumAssmPerAssm   int
	NumAssmLevels    int
	NumCompPerAssm   int
	MinAtomicDate    int
	MaxAtomicDate    int
	Seed             int64

	// InlineDocLimit is the largest document stored inline in its
	// document object; bigger texts become multi-page objects. The medium
	// configuration's 20000-byte documents exceed one 8K page, as in the
	// paper's ESM.
	InlineDocLimit int
}

// Small returns the paper's small-database parameters.
func Small() Params {
	return Params{
		NumAtomicPerComp: 20,
		NumConnPerAtomic: 3,
		DocumentSize:     2000,
		ManualSize:       100_000,
		NumCompPerModule: 500,
		NumAssmPerAssm:   3,
		NumAssmLevels:    7,
		NumCompPerAssm:   3,
		MinAtomicDate:    1000,
		MaxAtomicDate:    1999,
		Seed:             OO7Seed,
		InlineDocLimit:   4000,
	}
}

// Medium returns the paper's medium-database parameters.
func Medium() Params {
	p := Small()
	p.NumAtomicPerComp = 200
	p.DocumentSize = 20_000
	p.ManualSize = 1_000_000
	return p
}

// Tiny returns a reduced configuration for tests: the full structure at a
// fraction of the size.
func Tiny() Params {
	return Params{
		NumAtomicPerComp: 8,
		NumConnPerAtomic: 3,
		DocumentSize:     256,
		ManualSize:       3*8192 + 500,
		NumCompPerModule: 20,
		NumAssmPerAssm:   3,
		NumAssmLevels:    4,
		NumCompPerAssm:   3,
		MinAtomicDate:    1000,
		MaxAtomicDate:    1999,
		Seed:             OO7Seed,
		InlineDocLimit:   4000,
	}
}

// SmallTest is a mid-size configuration for tests that need the paper's
// cluster geometry (a QuickStore composite-part cluster just under one 8K
// page, the E cluster spilling onto a second page) without paying for the
// full small database.
func SmallTest() Params {
	p := Small()
	p.NumCompPerModule = 40
	p.NumAssmLevels = 5
	p.ManualSize = 50_000
	return p
}

// OO7Seed is the default generator seed; the same seed produces structurally
// identical databases across all three systems.
const OO7Seed = 1994

// NumAtomicParts returns the total atomic-part count of the configuration.
func (p Params) NumAtomicParts() int { return p.NumCompPerModule * p.NumAtomicPerComp }

// NumAssemblies returns the total assembly count ((f^L - 1)/(f - 1)).
func (p Params) NumAssemblies() int {
	total, pow := 0, 1
	for l := 0; l < p.NumAssmLevels; l++ {
		total += pow
		pow *= p.NumAssmPerAssm
	}
	return total
}

// NumBaseAssemblies returns the leaf assembly count (f^(L-1)).
func (p Params) NumBaseAssemblies() int {
	pow := 1
	for l := 1; l < p.NumAssmLevels; l++ {
		pow *= p.NumAssmPerAssm
	}
	return pow
}

// Index names.
const (
	IdxPartID   = "part.id"
	IdxPartDate = "part.date"
	IdxDocTitle = "doc.title"
)

// TitleOf is the deterministic title of composite part id's document,
// used by the generator and by Q4's random lookups.
func TitleOf(compID int) string { return fmt.Sprintf("Composite Part %05d", compID) }

// manualByte generates the manual's content deterministically; T8 counts
// occurrences of ManualProbe in it.
func manualByte(i int) byte {
	const alphabet = "the quick brown fox jumps over the lazy module "
	return alphabet[i%len(alphabet)]
}

// ManualProbe is the character T8 counts.
const ManualProbe = byte('q')

// ExpectedManualCount returns how many times ManualProbe occurs in a manual
// of n bytes (for validating T8 across systems).
func ExpectedManualCount(n int) int {
	count := 0
	for i := 0; i < n; i++ {
		if manualByte(i) == ManualProbe {
			count++
		}
	}
	return count
}

// Generate builds the OO7 database through db in one bulk transaction:
// composite-part clusters (each composite part, its document, and its
// atomic-part graph with connections share a cluster, as in the paper's
// implementation), then the assembly hierarchy, the module, its manual, and
// the three indices.
func Generate(db DB, p Params) error {
	if err := db.Begin(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	date := func() int32 {
		return int32(p.MinAtomicDate + rng.Intn(p.MaxAtomicDate-p.MinAtomicDate+1))
	}

	idxID := db.CreateIndex(IdxPartID)
	idxDate := db.CreateIndex(IdxPartDate)
	idxTitle := db.CreateIndex(IdxDocTitle)

	comps := make([]Ref, p.NumCompPerModule)
	cl := db.NewCluster()
	docText := make([]byte, p.DocumentSize)
	for i := range docText {
		docText[i] = byte('a' + i%26)
	}
	partID := int32(1)
	parts := make([]Ref, p.NumAtomicPerComp)
	for ci := range comps {
		cl.Break() // each composite part starts a fresh cluster
		comp := db.Alloc(cl, TCompositePart, 0)
		comps[ci] = comp
		db.SetI32(comp, TCompositePart, CompID, int32(ci+1))
		db.SetI32(comp, TCompositePart, CompBuildDate, date())

		// The document, clustered with its composite part.
		var doc Ref
		if p.DocumentSize <= p.InlineDocLimit {
			doc = db.Alloc(cl, TDocument, p.DocumentSize)
			db.SetTail(doc, TDocument, docText)
			db.SetI32(doc, TDocument, DocTextLen, int32(p.DocumentSize))
		} else {
			doc = db.Alloc(cl, TDocument, 0)
			text := db.AllocLarge(cl, uint64(p.DocumentSize))
			db.WriteLarge(text, docText, 0)
			db.SetRef(doc, TDocument, DocTextRef, text)
			db.SetI32(doc, TDocument, DocTextLen, int32(p.DocumentSize))
		}
		db.SetI32(doc, TDocument, DocID, int32(ci+1))
		db.SetRef(doc, TDocument, DocPart, comp)
		title := TitleOf(ci + 1)
		var tbuf [40]byte
		copy(tbuf[:], title)
		db.SetBytes(doc, TDocument, DocTitle, tbuf[:])
		idxTitle.InsertString(title, doc)
		db.SetRef(comp, TCompositePart, CompDoc, doc)

		// The atomic parts, clustered with their composite part. Each part
		// is allocated together with its outgoing connection objects, so
		// parts interleave with connections on the cluster's pages (the
		// C++ benchmark's allocation order); wiring happens in a second
		// pass because connection targets may not exist yet.
		nconn := p.NumConnPerAtomic
		if nconn > 3 {
			nconn = 3
		}
		conns := make([][3]Ref, p.NumAtomicPerComp)
		for pi := 0; pi < p.NumAtomicPerComp; pi++ {
			parts[pi] = db.Alloc(cl, TAtomicPart, 0)
			for c := 0; c < nconn; c++ {
				conns[pi][c] = db.Alloc(cl, TConnection, 0)
			}
		}
		connField := [3]int{APartConn0, APartConn1, APartConn2}
		for pi := 0; pi < p.NumAtomicPerComp; pi++ {
			part := parts[pi]
			bd := date()
			db.SetI32(part, TAtomicPart, APartID, partID)
			db.SetI32(part, TAtomicPart, APartBuildDate, bd)
			db.SetI32(part, TAtomicPart, APartX, int32(rng.Intn(100000)))
			db.SetI32(part, TAtomicPart, APartY, int32(rng.Intn(100000)))
			db.SetI32(part, TAtomicPart, APartDocID, int32(ci+1))
			db.SetBytes(part, TAtomicPart, APartType, []byte("type00000\x00"))
			db.SetRef(part, TAtomicPart, APartPartOf, comp)
			idxID.InsertInt(int64(partID), part)
			idxDate.InsertInt(int64(bd), part)
			partID++
			// Connections: the first edge goes to the next part
			// (guaranteeing the graph is connected and reachable from the
			// root part); the rest go to random parts, per the OO7
			// specification.
			for c := 0; c < nconn; c++ {
				var to int
				if c == 0 {
					to = (pi + 1) % p.NumAtomicPerComp
				} else {
					to = rng.Intn(p.NumAtomicPerComp)
				}
				conn := conns[pi][c]
				db.SetI32(conn, TConnection, ConnLength, int32(rng.Intn(1000)))
				db.SetBytes(conn, TConnection, ConnType, []byte("type00000\x00"))
				db.SetRef(conn, TConnection, ConnFrom, part)
				db.SetRef(conn, TConnection, ConnTo, parts[to])
				db.SetRef(part, TAtomicPart, connField[c], conn)
				// Bidirectional association: chain this connection into
				// the target part's incoming list.
				db.SetRef(conn, TConnection, ConnFromNext, db.GetRef(parts[to], TAtomicPart, APartInConn))
				db.SetRef(parts[to], TAtomicPart, APartInConn, conn)
			}
		}
		db.SetRef(comp, TCompositePart, CompRootPart, parts[0])
		if err := db.Err(); err != nil {
			return fmt.Errorf("oo7: generating composite part %d: %w", ci+1, err)
		}
	}

	// The module, its manual, and the assembly hierarchy.
	acl := db.NewCluster()
	module := db.Alloc(acl, TModule, 0)
	db.SetI32(module, TModule, ModID, 1)
	manual := db.AllocLarge(acl, uint64(p.ManualSize))
	const chunk = 32 << 10
	buf := make([]byte, chunk)
	for off := 0; off < p.ManualSize; off += chunk {
		n := chunk
		if off+n > p.ManualSize {
			n = p.ManualSize - off
		}
		for i := 0; i < n; i++ {
			buf[i] = manualByte(off + i)
		}
		db.WriteLarge(manual, buf[:n], uint64(off))
	}
	db.SetRef(module, TModule, ModManual, manual)
	db.SetI32(module, TModule, ModManSize, int32(p.ManualSize))

	asmID := int32(1)
	var build func(level int, super Ref) Ref
	build = func(level int, super Ref) Ref {
		if level == p.NumAssmLevels {
			base := db.Alloc(acl, TBaseAssembly, 0)
			db.SetI32(base, TBaseAssembly, BAsmID, asmID)
			asmID++
			db.SetI32(base, TBaseAssembly, BAsmBuildDate, date())
			// A negative level marks base assemblies; the traversal code
			// reads this field through either assembly type (it sits at
			// the same offset in both layouts).
			db.SetI32(base, TBaseAssembly, BAsmLevel, int32(-level))
			db.SetRef(base, TBaseAssembly, BAsmSuper, super)
			compField := [3]int{BAsmComp0, BAsmComp1, BAsmComp2}
			for c := 0; c < p.NumCompPerAssm && c < 3; c++ {
				comp := comps[rng.Intn(len(comps))]
				db.SetRef(base, TBaseAssembly, compField[c], comp)
				// Back-reference: a use link on the composite part's
				// "used in" chain (traversed by T7 and Q4).
				link := db.Alloc(acl, TUseLink, 0)
				db.SetRef(link, TUseLink, UseAssembly, base)
				db.SetRef(link, TUseLink, UseNext, db.GetRef(comp, TCompositePart, CompUsedIn))
				db.SetRef(comp, TCompositePart, CompUsedIn, link)
			}
			// The module's collection of base assemblies (Q5).
			db.SetRef(base, TBaseAssembly, BAsmNext, db.GetRef(module, TModule, ModBAsmHead))
			db.SetRef(module, TModule, ModBAsmHead, base)
			return base
		}
		cx := db.Alloc(acl, TComplexAssembly, 0)
		db.SetI32(cx, TComplexAssembly, CAsmID, asmID)
		asmID++
		db.SetI32(cx, TComplexAssembly, CAsmBuildDate, date())
		db.SetI32(cx, TComplexAssembly, CAsmLevel, int32(level))
		db.SetRef(cx, TComplexAssembly, CAsmSuper, super)
		subField := [3]int{CAsmSub0, CAsmSub1, CAsmSub2}
		for i := 0; i < p.NumAssmPerAssm && i < 3; i++ {
			db.SetRef(cx, TComplexAssembly, subField[i], build(level+1, cx))
		}
		return cx
	}
	root := build(1, NilRef)
	db.SetRef(module, TModule, ModRoot, root)
	db.SetRoot("module", module)
	if err := db.Err(); err != nil {
		return fmt.Errorf("oo7: generating hierarchy: %w", err)
	}
	return db.Commit()
}
