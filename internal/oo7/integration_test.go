package oo7

import (
	"net"
	"testing"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/epvm"
	"quickstore/internal/esm"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// TestOpsCorrectUnderForcedRelocation reruns the whole read-only suite on a
// QuickStore session that relocates every page claim: answers must not
// change even though every pointer gets swizzled.
func TestOpsCorrectUnderForcedRelocation(t *testing.T) {
	p := Tiny()
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{BufferPages: 1024, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	newClient := func() *esm.Client {
		return esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 256, Clock: clock})
	}
	gen, err := core.New(newClient(), core.Config{BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Generate(NewQS(gen, false), p); err != nil {
		t.Fatal(err)
	}
	srv.DropCaches()

	open := func(cfg core.Config) DB {
		s, err := core.Open(newClient(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return NewQS(s, false)
	}
	baseline := open(core.Config{})
	for _, mode := range []core.RelocationMode{core.RelocCR, core.RelocOR} {
		srv.DropCaches()
		relocated := open(core.Config{Relocation: mode, RelocateFraction: 1.0, RelocSeed: 9})
		type opFn struct {
			name string
			fn   func(DB) (int, error)
		}
		ops := []opFn{
			{"T1", T1},
			{"T6", T6},
			{"T8", T8},
			{"Q1", func(db DB) (int, error) { return Q1(db, p, 5) }},
			{"Q3", func(db DB) (int, error) { return Q3(db, p) }},
			{"Q4", func(db DB) (int, error) { return Q4(db, p, 5) }},
			{"Q5", Q5},
		}
		for _, op := range ops {
			want, err := op.fn(baseline)
			if err != nil {
				t.Fatalf("baseline %s: %v", op.name, err)
			}
			got, err := op.fn(relocated)
			if err != nil {
				t.Fatalf("relocated(%v) %s: %v", mode, op.name, err)
			}
			if got != want {
				t.Errorf("relocated(%v) %s = %d, want %d", mode, op.name, got, want)
			}
		}
		if sw := clock.Count(sim.CtrSwizzledPtr); sw == 0 {
			t.Fatal("forced relocation swizzled nothing")
		}
	}
}

// TestOO7OverTCP runs generation plus a traversal and a query through the
// real network transport, end to end, for both QS and E.
func TestOO7OverTCP(t *testing.T) {
	p := Tiny()
	for _, sysName := range []string{"QS", "E"} {
		clock := sim.NewClock(sim.DefaultCostModel())
		srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
			esm.ServerConfig{BufferPages: 1024, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go esm.Serve(l, srv)
		dial := func() *esm.Client {
			tr, err := esm.DialTCP(l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			return esm.NewClient(tr, esm.ClientConfig{BufferPages: 256, Clock: clock})
		}

		var gen, run DB
		switch sysName {
		case "QS":
			s, err := core.New(dial(), core.Config{BulkLoad: true})
			if err != nil {
				t.Fatal(err)
			}
			gen = NewQS(s, false)
		case "E":
			s, err := epvm.New(dial(), epvm.Config{BulkLoad: true})
			if err != nil {
				t.Fatal(err)
			}
			gen = NewE(s)
		}
		if err := Generate(gen, p); err != nil {
			t.Fatalf("%s over TCP: generate: %v", sysName, err)
		}
		srv.DropCaches()

		switch sysName {
		case "QS":
			s, err := core.Open(dial(), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			run = NewQS(s, false)
		case "E":
			s, err := epvm.Open(dial(), epvm.Config{})
			if err != nil {
				t.Fatal(err)
			}
			run = NewE(s)
		}
		wantT1 := p.NumBaseAssemblies() * p.NumCompPerAssm * p.NumAtomicPerComp
		n, err := T1(run)
		if err != nil {
			t.Fatalf("%s over TCP: T1: %v", sysName, err)
		}
		if n != wantT1 {
			t.Errorf("%s over TCP: T1 = %d, want %d", sysName, n, wantT1)
		}
		if _, err := Q5(run); err != nil {
			t.Fatalf("%s over TCP: Q5: %v", sysName, err)
		}
		if _, err := T2(run, VariantA); err != nil {
			t.Fatalf("%s over TCP: T2A: %v", sysName, err)
		}
		l.Close()
	}
}

// TestGeneratedStructure inspects the generated database's invariants
// through the driver: connection symmetry, part-of links, and the module's
// base-assembly collection size.
func TestGeneratedStructure(t *testing.T) {
	p := Tiny()
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{BufferPages: 1024, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 512, Clock: clock})
	s, err := core.New(c, core.Config{BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	db := NewQS(s, false)
	if err := Generate(db, p); err != nil {
		t.Fatal(err)
	}

	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	defer db.Commit()

	// Module's base-assembly chain length.
	module := db.Root("module")
	count := 0
	for base := db.GetRef(module, TModule, ModBAsmHead); base != NilRef; base = db.GetRef(base, TBaseAssembly, BAsmNext) {
		count++
		if lvl := db.GetI32(base, TBaseAssembly, BAsmLevel); lvl >= 0 {
			t.Fatalf("base assembly has non-negative level %d", lvl)
		}
	}
	if count != p.NumBaseAssemblies() {
		t.Errorf("base-assembly chain has %d entries, want %d", count, p.NumBaseAssemblies())
	}

	// Every atomic part: connections reference back via From; partOf's
	// root graph contains the part (checked for composite part 1).
	refs := db.Index(IdxPartID).LookupInt(1)
	if len(refs) != 1 {
		t.Fatalf("part 1: %d index hits", len(refs))
	}
	part := refs[0]
	comp := db.GetRef(part, TAtomicPart, APartPartOf)
	if db.GetI32(comp, TCompositePart, CompID) != 1 {
		t.Error("part 1 not in composite 1")
	}
	for _, f := range [3]int{APartConn0, APartConn1, APartConn2} {
		conn := db.GetRef(part, TAtomicPart, f)
		if conn == NilRef {
			t.Fatalf("part 1 missing connection %d", f)
		}
		if db.GetRef(conn, TConnection, ConnFrom) != part {
			t.Error("connection From does not point back")
		}
		to := db.GetRef(conn, TConnection, ConnTo)
		if to == NilRef {
			t.Fatal("connection has nil To")
		}
		// The incoming chain of the target must contain this connection.
		found := false
		for in := db.GetRef(to, TAtomicPart, APartInConn); in != NilRef; in = db.GetRef(in, TConnection, ConnFromNext) {
			if in == conn {
				found = true
				break
			}
		}
		if !found {
			t.Error("connection missing from target's incoming chain")
		}
	}
	// The document round-trips through the title index.
	docRefs := db.Index(IdxDocTitle).LookupString(TitleOf(1))
	if len(docRefs) != 1 {
		t.Fatalf("document title lookup: %d hits", len(docRefs))
	}
	if db.GetRef(docRefs[0], TDocument, DocPart) != comp {
		t.Error("document does not reference its composite part")
	}
	if err := db.Err(); err != nil {
		t.Fatal(err)
	}
}
