package oo7

import (
	"testing"
)

// TestExtraQueriesAgree runs the beyond-the-paper queries on all three
// systems and requires identical answers.
func TestExtraQueriesAgree(t *testing.T) {
	p := Tiny()
	systems := buildAll(t, p)
	type opFn struct {
		name string
		fn   func(DB) (int, error)
	}
	ops := []opFn{
		{"Q6", Q6},
		{"Q7", func(db DB) (int, error) { return Q7(db, p) }},
		{"Q8", func(db DB) (int, error) { return Q8(db, p, 17) }},
	}
	for _, op := range ops {
		var want int
		for i, sys := range systems {
			sys.cold(t)
			db := sys.open(128)
			n, err := op.fn(db)
			if err != nil {
				t.Fatalf("%s on %s: %v", op.name, sys.name, err)
			}
			if i == 0 {
				want = n
				if n == 0 {
					t.Errorf("%s returned 0; workload is vacuous", op.name)
				}
			} else if n != want {
				t.Errorf("%s: %s=%d, want %d", op.name, sys.name, n, want)
			}
		}
	}
}

// TestQ7CountsEverything pins Q7's semantics.
func TestQ7CountsEverything(t *testing.T) {
	p := Tiny()
	sys := buildSystem(t, "QS", p)
	db := sys.open(128)
	n, err := Q7(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.NumAtomicParts() {
		t.Fatalf("Q7 = %d, want %d", n, p.NumAtomicParts())
	}
}

// TestStructuralInsertDelete exercises the full object-deletion path on
// every system: insert composite parts, observe them through the indexes,
// delete them, and verify the database is back to its original answers.
func TestStructuralInsertDelete(t *testing.T) {
	p := Tiny()
	for _, name := range []string{"QS", "E", "QS-B"} {
		sys := buildSystem(t, name, p)
		db := sys.open(256)

		baseQ7, err := Q7(db, p)
		if err != nil {
			t.Fatalf("%s: Q7: %v", name, err)
		}
		baseT1, err := T1(db)
		if err != nil {
			t.Fatal(err)
		}

		created, err := StructuralInsert(db, p, 5, 23)
		if err != nil {
			t.Fatalf("%s: insert: %v", name, err)
		}
		if created == 0 {
			t.Fatalf("%s: nothing created", name)
		}
		// The inserted parts are visible through the id index.
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		refs := db.Index(IdxPartID).LookupInt(int64(p.NumAtomicParts() + 1000000))
		if len(refs) != 1 {
			t.Fatalf("%s: inserted part not indexed (%d hits)", name, len(refs))
		}
		// And through the title index.
		docs := db.Index(IdxDocTitle).LookupString(TitleOf(p.NumCompPerModule + 1000))
		if len(docs) != 1 {
			t.Fatalf("%s: inserted document not indexed (%d hits)", name, len(docs))
		}
		if err := db.Commit(); err != nil {
			t.Fatal(err)
		}

		// A second insert extends the chain.
		if _, err := StructuralInsert(db, p, 2, 29); err != nil {
			t.Fatalf("%s: second insert: %v", name, err)
		}

		deleted, err := StructuralDelete(db)
		if err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if deleted == 0 {
			t.Fatalf("%s: nothing deleted", name)
		}

		// Cold session: the database answers as before the inserts.
		sys.cold(t)
		db2 := sys.open(256)
		q7, err := Q7(db2, p)
		if err != nil {
			t.Fatalf("%s: post-delete Q7: %v", name, err)
		}
		if q7 != baseQ7 {
			t.Errorf("%s: post-delete Q7 = %d, want %d", name, q7, baseQ7)
		}
		t1, err := T1(db2)
		if err != nil {
			t.Fatalf("%s: post-delete T1: %v", name, err)
		}
		if t1 != baseT1 {
			t.Errorf("%s: post-delete T1 = %d, want %d", name, t1, baseT1)
		}
		// Index entries are gone.
		if err := db2.Begin(); err != nil {
			t.Fatal(err)
		}
		if refs := db2.Index(IdxPartID).LookupInt(int64(p.NumAtomicParts() + 1000000)); len(refs) != 0 {
			t.Errorf("%s: deleted part still indexed", name)
		}
		if docs := db2.Index(IdxDocTitle).LookupString(TitleOf(p.NumCompPerModule + 1000)); len(docs) != 0 {
			t.Errorf("%s: deleted document still indexed", name)
		}
		// Deleting again is a no-op.
		if err := db2.Commit(); err != nil {
			t.Fatal(err)
		}
		n, err := StructuralDelete(db2)
		if err != nil || n != 0 {
			t.Errorf("%s: second delete = %d, %v", name, n, err)
		}
	}
}
