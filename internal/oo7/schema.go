package oo7

import "quickstore/internal/schema"

// The OO7 schema (Section 4.1 of the paper, Figure 6/7). Connections are
// information-bearing objects interposed between connected atomic parts;
// composite parts carry a linked collection of "used in" links back to the
// base assemblies that use them (traversed by T7 and Q4); the module keeps
// a linked collection of its base assemblies (iterated by Q5).

// Schema type ids.
const (
	TAtomicPart TypeID = iota
	TConnection
	TCompositePart
	TDocument
	TBaseAssembly
	TComplexAssembly
	TModule
	TUseLink
	TExtraLink
	numTypes
)

// Field indices per type (declaration order).
const (
	APartID        = 0 // i32
	APartBuildDate = 1 // i32
	APartX         = 2 // i32
	APartY         = 3 // i32
	APartDocID     = 4 // i32
	APartType      = 5 // bytes(10)
	APartPartOf    = 6 // ref -> CompositePart
	APartConn0     = 7 // ref -> Connection (outgoing)
	APartConn1     = 8
	APartConn2     = 9
	APartInConn    = 10 // ref -> Connection (incoming chain head)
)

const (
	ConnLength   = 0 // i32
	ConnType     = 1 // bytes(10)
	ConnFrom     = 2 // ref -> AtomicPart
	ConnTo       = 3 // ref -> AtomicPart
	ConnFromNext = 4 // ref -> Connection (next incoming edge of To)
)

const (
	CompID        = 0 // i32
	CompBuildDate = 1 // i32
	CompRootPart  = 2 // ref -> AtomicPart
	CompDoc       = 3 // ref -> Document
	CompUsedIn    = 4 // ref -> UseLink chain
)

const (
	DocID      = 0 // i32
	DocPart    = 1 // ref -> CompositePart
	DocTitle   = 2 // bytes(40)
	DocTextRef = 3 // ref -> large text (nil when the text is inline)
	DocTextLen = 4 // i32 (inline tail length when TextRef is nil)
)

const (
	BAsmID        = 0 // i32
	BAsmBuildDate = 1 // i32
	BAsmLevel     = 2 // i32; negated to mark "this is a base assembly"
	BAsmComp0     = 3 // ref -> CompositePart
	BAsmComp1     = 4 // ref -> CompositePart
	BAsmComp2     = 5 // ref -> CompositePart
	BAsmSuper     = 6 // ref -> ComplexAssembly
	BAsmNext      = 7 // ref -> BaseAssembly (module's collection chain)
)

const (
	CAsmID        = 0 // i32
	CAsmBuildDate = 1 // i32
	CAsmLevel     = 2 // i32
	CAsmSub0      = 3 // ref -> assembly (complex or base)
	CAsmSub1      = 4 // ref -> assembly
	CAsmSub2      = 5 // ref -> assembly
	CAsmSuper     = 6 // ref -> ComplexAssembly
)

const (
	ModID       = 0 // i32
	ModRoot     = 1 // ref -> ComplexAssembly (design root)
	ModManual   = 2 // ref -> Manual (large object)
	ModBAsmHead = 3 // ref -> BaseAssembly chain
	ModManSize  = 4 // i32
)

const (
	UseAssembly = 0 // ref -> BaseAssembly
	UseNext     = 1 // ref -> UseLink
)

// ExtraLink chains the composite parts created by the structural-insert
// operation (a benchmark extension beyond the paper's subset).
const (
	ExtraComp = 0 // ref -> CompositePart
	ExtraNext = 1 // ref -> ExtraLink
)

// Types declares the OO7 schema once; each driver derives its own physical
// layouts from it (8-byte refs for QS, 16-byte for E, padded for QS-B).
var Types = [numTypes]schema.Type{
	TAtomicPart: {Name: "AtomicPart", Fields: []schema.Field{
		{Name: "id", Kind: schema.I32},
		{Name: "buildDate", Kind: schema.I32},
		{Name: "x", Kind: schema.I32},
		{Name: "y", Kind: schema.I32},
		{Name: "docId", Kind: schema.I32},
		{Name: "type", Kind: schema.Bytes, Size: 10},
		{Name: "partOf", Kind: schema.Ref},
		{Name: "conn0", Kind: schema.Ref},
		{Name: "conn1", Kind: schema.Ref},
		{Name: "conn2", Kind: schema.Ref},
		{Name: "inConn", Kind: schema.Ref},
	}},
	TConnection: {Name: "Connection", Fields: []schema.Field{
		{Name: "length", Kind: schema.I32},
		{Name: "type", Kind: schema.Bytes, Size: 10},
		{Name: "from", Kind: schema.Ref},
		{Name: "to", Kind: schema.Ref},
		{Name: "fromNext", Kind: schema.Ref},
	}},
	TCompositePart: {Name: "CompositePart", Fields: []schema.Field{
		{Name: "id", Kind: schema.I32},
		{Name: "buildDate", Kind: schema.I32},
		{Name: "rootPart", Kind: schema.Ref},
		{Name: "doc", Kind: schema.Ref},
		{Name: "usedIn", Kind: schema.Ref},
	}},
	TDocument: {Name: "Document", Fields: []schema.Field{
		{Name: "id", Kind: schema.I32},
		{Name: "part", Kind: schema.Ref},
		{Name: "title", Kind: schema.Bytes, Size: 40},
		{Name: "textRef", Kind: schema.Ref},
		{Name: "textLen", Kind: schema.I32},
	}},
	TBaseAssembly: {Name: "BaseAssembly", Fields: []schema.Field{
		{Name: "id", Kind: schema.I32},
		{Name: "buildDate", Kind: schema.I32},
		{Name: "level", Kind: schema.I32},
		{Name: "comp0", Kind: schema.Ref},
		{Name: "comp1", Kind: schema.Ref},
		{Name: "comp2", Kind: schema.Ref},
		{Name: "super", Kind: schema.Ref},
		{Name: "next", Kind: schema.Ref},
	}},
	TComplexAssembly: {Name: "ComplexAssembly", Fields: []schema.Field{
		{Name: "id", Kind: schema.I32},
		{Name: "buildDate", Kind: schema.I32},
		{Name: "level", Kind: schema.I32},
		{Name: "sub0", Kind: schema.Ref},
		{Name: "sub1", Kind: schema.Ref},
		{Name: "sub2", Kind: schema.Ref},
		{Name: "super", Kind: schema.Ref},
	}},
	TModule: {Name: "Module", Fields: []schema.Field{
		{Name: "id", Kind: schema.I32},
		{Name: "root", Kind: schema.Ref},
		{Name: "manual", Kind: schema.Ref},
		{Name: "bAsmHead", Kind: schema.Ref},
		{Name: "manSize", Kind: schema.I32},
	}},
	TUseLink: {Name: "UseLink", Fields: []schema.Field{
		{Name: "assembly", Kind: schema.Ref},
		{Name: "next", Kind: schema.Ref},
	}},
	TExtraLink: {Name: "ExtraLink", Fields: []schema.Field{
		{Name: "comp", Kind: schema.Ref},
		{Name: "next", Kind: schema.Ref},
	}},
}

// Layouts computes the physical layouts for a reference width.
func Layouts(refSize int) [numTypes]schema.Layout {
	var ls [numTypes]schema.Layout
	for i := range Types {
		ls[i] = Types[i].LayoutFor(refSize)
	}
	return ls
}

// PaddedLayouts computes QS-B layouts: 8-byte references, object sizes
// padded to the 16-byte-reference sizes.
func PaddedLayouts() [numTypes]schema.Layout {
	big := Layouts(16)
	var ls [numTypes]schema.Layout
	for i := range Types {
		ls[i] = Types[i].PaddedLayoutFor(8, big[i].Size)
	}
	return ls
}

// NumTypes exports the schema size for drivers.
const NumTypes = int(numTypes)
