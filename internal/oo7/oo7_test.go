package oo7

import (
	"testing"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/epvm"
	"quickstore/internal/esm"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// system bundles one generated OO7 database with a way to open fresh (cold)
// benchmark sessions against it.
type system struct {
	name  string
	srv   *esm.Server
	clock *sim.Clock
	open  func(bufPages int) DB
}

func buildSystem(t *testing.T, name string, p Params) *system {
	t.Helper()
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{BufferPages: 1024, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	sys := &system{name: name, srv: srv, clock: clock}
	newClient := func(bufPages int) *esm.Client {
		return esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: bufPages, Clock: clock})
	}
	// Generate in bulk-load mode.
	var gen DB
	switch name {
	case "QS", "QS-B":
		s, err := core.New(newClient(512), core.Config{BulkLoad: true})
		if err != nil {
			t.Fatal(err)
		}
		gen = NewQS(s, name == "QS-B")
	case "E":
		s, err := epvm.New(newClient(512), epvm.Config{BulkLoad: true})
		if err != nil {
			t.Fatal(err)
		}
		gen = NewE(s)
	}
	if err := Generate(gen, p); err != nil {
		t.Fatalf("%s: generate: %v", name, err)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sys.open = func(bufPages int) DB {
		switch name {
		case "QS", "QS-B":
			s, err := core.Open(newClient(bufPages), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return NewQS(s, name == "QS-B")
		default:
			s, err := epvm.Open(newClient(bufPages), epvm.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return NewE(s)
		}
	}
	return sys
}

func (sys *system) cold(t *testing.T) {
	t.Helper()
	if err := sys.srv.DropCaches(); err != nil {
		t.Fatal(err)
	}
}

func buildAll(t *testing.T, p Params) []*system {
	t.Helper()
	return []*system{
		buildSystem(t, "QS", p),
		buildSystem(t, "E", p),
		buildSystem(t, "QS-B", p),
	}
}

// TestAllOpsAgreeAcrossSystems is the benchmark's correctness anchor: every
// operation must compute the same answer on QS, E, and QS-B, cold and hot.
func TestAllOpsAgreeAcrossSystems(t *testing.T) {
	p := Tiny()
	systems := buildAll(t, p)

	type opFn struct {
		name string
		fn   func(DB) (int, error)
	}
	ops := []opFn{
		{"T1", T1},
		{"T6", T6},
		{"T7", func(db DB) (int, error) { return T7(db, p, 7) }},
		{"T8", T8},
		{"T9", T9},
		{"Q1", func(db DB) (int, error) { return Q1(db, p, 11) }},
		{"Q2", func(db DB) (int, error) { return Q2(db, p) }},
		{"Q3", func(db DB) (int, error) { return Q3(db, p) }},
		{"Q4", func(db DB) (int, error) { return Q4(db, p, 13) }},
		{"Q5", Q5},
	}
	for _, op := range ops {
		var want int
		for i, sys := range systems {
			sys.cold(t)
			db := sys.open(128)
			coldN, err := op.fn(db)
			if err != nil {
				t.Fatalf("%s cold on %s: %v", op.name, sys.name, err)
			}
			hotN, err := op.fn(db)
			if err != nil {
				t.Fatalf("%s hot on %s: %v", op.name, sys.name, err)
			}
			if coldN != hotN {
				t.Errorf("%s on %s: cold=%d hot=%d", op.name, sys.name, coldN, hotN)
			}
			if i == 0 {
				want = coldN
			} else if coldN != want {
				t.Errorf("%s: %s=%d, want %d (QS)", op.name, sys.name, coldN, want)
			}
		}
	}
}

func TestStructuralCounts(t *testing.T) {
	p := Tiny()
	sys := buildSystem(t, "QS", p)
	db := sys.open(128)

	n, err := T1(db)
	if err != nil {
		t.Fatal(err)
	}
	// T1 visits each base assembly's 3 composite graphs fully: visits =
	// numBase * 3 * NumAtomicPerComp (every graph is connected).
	want := p.NumBaseAssemblies() * p.NumCompPerAssm * p.NumAtomicPerComp
	if n != want {
		t.Errorf("T1 visited %d, want %d", n, want)
	}

	n, err = T6(db)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.NumBaseAssemblies()*p.NumCompPerAssm {
		t.Errorf("T6 visited %d, want %d", n, p.NumBaseAssemblies()*p.NumCompPerAssm)
	}

	n, err = T8(db)
	if err != nil {
		t.Fatal(err)
	}
	if n != ExpectedManualCount(p.ManualSize) {
		t.Errorf("T8 counted %d, want %d", n, ExpectedManualCount(p.ManualSize))
	}

	// T7: a randomly chosen part whose composite is used by at least one
	// assembly yields part + composite + link + base + (levels-1) supers;
	// an unused composite legally stops after 2. Try seeds until the full
	// path shows up, then check its exact length.
	sawFull := false
	for seed := int64(1); seed <= 20 && !sawFull; seed++ {
		n, err = T7(db, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if n == 2 {
			continue // composite part used by no assembly
		}
		sawFull = true
		if n != 4+(p.NumAssmLevels-1) {
			t.Errorf("T7 visited %d, want %d", n, 4+(p.NumAssmLevels-1))
		}
	}
	if !sawFull {
		t.Error("T7 never found a used composite part in 20 seeds")
	}

	n, err = Q2(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// ~1% of parts; the dates are uniform random, allow slack.
	total := p.NumAtomicParts()
	if n == 0 || n > total/20 {
		t.Errorf("Q2 returned %d of %d parts", n, total)
	}
	n3, err := Q3(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if n3 <= n || n3 > total/4 {
		t.Errorf("Q3 returned %d (Q2 was %d)", n3, n)
	}
}

// TestUpdatesAgreeAndPersist runs T2/T3 on all systems and checks both the
// update counts and that the updates stick (visible in a fresh session).
func TestUpdatesAgreeAndPersist(t *testing.T) {
	p := Tiny()
	systems := buildAll(t, p)

	type upd struct {
		name string
		fn   func(DB) (int, error)
	}
	ops := []upd{
		{"T2A", func(db DB) (int, error) { return T2(db, VariantA) }},
		{"T2B", func(db DB) (int, error) { return T2(db, VariantB) }},
		{"T2C", func(db DB) (int, error) { return T2(db, VariantC) }},
		{"T3A", func(db DB) (int, error) { return T3(db, VariantA) }},
		{"T3B", func(db DB) (int, error) { return T3(db, VariantB) }},
	}
	for _, op := range ops {
		var want int
		for i, sys := range systems {
			sys.cold(t)
			db := sys.open(128)
			n, err := op.fn(db)
			if err != nil {
				t.Fatalf("%s on %s: %v", op.name, sys.name, err)
			}
			if i == 0 {
				want = n
			} else if n != want {
				t.Errorf("%s: %s=%d, want %d", op.name, sys.name, n, want)
			}
		}
	}

	// After all those updates, the three databases must still agree on T1
	// and Q5 from brand-new cold sessions (updates were durably committed
	// and index maintenance kept Q2 working).
	var wantT1, wantQ2 int
	for i, sys := range systems {
		sys.cold(t)
		db := sys.open(128)
		n, err := T1(db)
		if err != nil {
			t.Fatalf("post-update T1 on %s: %v", sys.name, err)
		}
		q2, err := Q2(db, p)
		if err != nil {
			t.Fatalf("post-update Q2 on %s: %v", sys.name, err)
		}
		if i == 0 {
			wantT1, wantQ2 = n, q2
		} else if n != wantT1 || q2 != wantQ2 {
			t.Errorf("post-update %s: T1=%d Q2=%d, want %d/%d", sys.name, n, q2, wantT1, wantQ2)
		}
	}
}

// TestT2IncrementsVisible verifies the actual field values changed by T2A.
func TestT2IncrementsVisible(t *testing.T) {
	p := Tiny()
	sys := buildSystem(t, "QS", p)
	db := sys.open(128)

	// Record x of the root part of composite part 1.
	readRootX := func() int32 {
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		refs := db.Index(IdxPartID).LookupInt(1)
		if len(refs) == 0 {
			t.Fatal("part 1 missing")
		}
		x := db.GetI32(refs[0], TAtomicPart, APartX)
		if err := db.Commit(); err != nil {
			t.Fatal(err)
		}
		return x
	}
	// A composite part is bumped once per base assembly referencing it, so
	// the increment is >= 0; run T2B twice and require strict growth when
	// part 1's composite is referenced at all.
	before := readRootX()
	n1, err := T2(db, VariantB)
	if err != nil {
		t.Fatal(err)
	}
	mid := readRootX()
	if _, err := T2(db, VariantB); err != nil {
		t.Fatal(err)
	}
	after := readRootX()
	if n1 == 0 {
		t.Fatal("T2B performed no updates")
	}
	if mid < before || after < mid {
		t.Errorf("x went backwards: %d -> %d -> %d", before, mid, after)
	}
	if after != mid+(mid-before) {
		t.Errorf("T2B increments not repeatable: %d -> %d -> %d", before, mid, after)
	}
}

// TestDatabaseSizeOrdering reproduces the Table 2 shape on the tiny
// configuration: QS < E <= QS-B.
func TestDatabaseSizeOrdering(t *testing.T) {
	p := SmallTest()
	systems := buildAll(t, p)
	sizes := map[string]uint32{}
	for _, sys := range systems {
		sizes[sys.name] = sys.srv.Volume().AllocatedPages()
	}
	if !(sizes["QS"] < sizes["E"]) {
		t.Errorf("sizes: QS=%d E=%d, want QS < E", sizes["QS"], sizes["E"])
	}
	if !(sizes["E"] <= sizes["QS-B"]) {
		t.Errorf("sizes: E=%d QS-B=%d, want E <= QS-B", sizes["E"], sizes["QS-B"])
	}
}

// TestIOAsymmetry reproduces the paper's central cold-T1 claim on the tiny
// config: QS reads substantially fewer pages than E on the clustered dense
// traversal.
func TestIOAsymmetry(t *testing.T) {
	p := SmallTest()
	systems := buildAll(t, p)
	reads := map[string]int64{}
	for _, sys := range systems {
		sys.cold(t)
		db := sys.open(256)
		base := sys.clock.Snapshot()
		if _, err := T1(db); err != nil {
			t.Fatal(err)
		}
		reads[sys.name] = sys.clock.Snapshot().Sub(base).Count(sim.CtrClientRead)
	}
	if reads["QS"] >= reads["E"] {
		t.Errorf("cold T1 client reads: QS=%d E=%d, want QS < E", reads["QS"], reads["E"])
	}
	if reads["QS-B"] < reads["E"] {
		t.Errorf("cold T1 client reads: QS-B=%d E=%d, want QS-B >= E", reads["QS-B"], reads["E"])
	}
}

// TestLayoutShapes sanity-checks the three physical layouts.
func TestLayoutShapes(t *testing.T) {
	qs := Layouts(8)
	e := Layouts(16)
	qsb := PaddedLayouts()
	for i := range Types {
		if qs[i].Size > e[i].Size {
			t.Errorf("%s: QS size %d > E size %d", Types[i].Name, qs[i].Size, e[i].Size)
		}
		if qsb[i].Size != e[i].Size && qsb[i].Size < e[i].Size {
			t.Errorf("%s: QS-B size %d < E size %d", Types[i].Name, qsb[i].Size, e[i].Size)
		}
		// Ref offsets are 8-byte aligned (bitmap requirement).
		for _, off := range qs[i].RefOffsets {
			if off%8 != 0 {
				t.Errorf("%s: ref offset %d unaligned", Types[i].Name, off)
			}
		}
	}
	// The atomic part ratio drives Table 2: E's atomic part should be
	// roughly double QS's (5 ints + 4 refs: 5*4+4*8 vs 5*4+4*16).
	if qs[TAtomicPart].Size >= e[TAtomicPart].Size {
		t.Errorf("atomic part: QS %d vs E %d", qs[TAtomicPart].Size, e[TAtomicPart].Size)
	}
}
