package oo7

import (
	"fmt"

	"quickstore/internal/btree"
	"quickstore/internal/disk"
	"quickstore/internal/epvm"
	"quickstore/internal/esm"
	"quickstore/internal/schema"
	"quickstore/internal/sim"
)

// eDB runs the benchmark over the E baseline: 16-byte OID pointers,
// interpreter-mediated dereferences and updates.
type eDB struct {
	s    *epvm.Store
	lays [numTypes]schema.Layout
	idx  map[string]*btree.Tree
	err  error
}

// NewE wraps an EPVM session as a benchmark driver.
func NewE(s *epvm.Store) DB {
	return &eDB{s: s, lays: Layouts(esm.OIDSize), idx: map[string]*btree.Tree{}}
}

// Name implements the DB interface for E.
func (db *eDB) Name() string { return "E" }

// Err implements the DB interface for E.
func (db *eDB) Err() error { return db.err }

// ClearErr implements the DB interface for E.
func (db *eDB) ClearErr() { db.err = nil }

// Clock implements the DB interface for E.
func (db *eDB) Clock() *sim.Clock { return db.s.Clock() }

func (db *eDB) latch(err error) {
	if err != nil && db.err == nil {
		db.err = err
	}
}

// Begin implements the DB interface for E.
func (db *eDB) Begin() error { return db.s.Begin() }

// Commit implements the DB interface for E.
func (db *eDB) Commit() error {
	if db.err != nil {
		err := db.err
		_ = db.s.Abort()
		return fmt.Errorf("oo7/E: latched error at commit: %w", err)
	}
	return db.s.Commit()
}

// Abort implements the DB interface for E.
func (db *eDB) Abort() error { return db.s.Abort() }

// SetRoot implements the DB interface for E.
func (db *eDB) SetRoot(name string, r Ref) { db.latch(db.s.SetRoot(name, epvm.Ref(r))) }

// Root implements the DB interface for E.
func (db *eDB) Root(name string) Ref {
	r, err := db.s.Root(name)
	db.latch(err)
	return Ref(r)
}

type eCluster struct{ cl *epvm.Cluster }

// Break implements the DB interface for E.
func (c eCluster) Break() { c.cl.Break() }

// NewCluster implements the DB interface for E.
func (db *eDB) NewCluster() Cluster { return eCluster{cl: db.s.NewCluster()} }

// Alloc implements the DB interface for E.
func (db *eDB) Alloc(cl Cluster, t TypeID, extra int) Ref {
	r, err := db.s.Alloc(cl.(eCluster).cl, db.lays[t].Size+extra)
	db.latch(err)
	return Ref(r)
}

// AllocLarge implements the DB interface for E.
func (db *eDB) AllocLarge(cl Cluster, size uint64) Ref {
	r, err := db.s.AllocLarge(cl.(eCluster).cl, size)
	db.latch(err)
	return Ref(r)
}

func (db *eDB) off(t TypeID, field int) int { return db.lays[t].Offsets[field] }

// Delete implements the DB interface for E.
func (db *eDB) Delete(r Ref, t TypeID) {
	_ = t
	db.latch(db.s.Delete(epvm.Ref(r)))
}

// GetI32 implements the DB interface for E.
func (db *eDB) GetI32(r Ref, t TypeID, field int) int32 {
	v, err := db.s.GetI32(epvm.Ref(r), db.off(t, field))
	db.latch(err)
	return v
}

// SetI32 implements the DB interface for E.
func (db *eDB) SetI32(r Ref, t TypeID, field int, v int32) {
	db.latch(db.s.SetI32(epvm.Ref(r), db.off(t, field), v))
}

// GetRef implements the DB interface for E.
func (db *eDB) GetRef(r Ref, t TypeID, field int) Ref {
	v, err := db.s.GetRef(epvm.Ref(r), db.off(t, field))
	db.latch(err)
	return Ref(v)
}

// SetRef implements the DB interface for E.
func (db *eDB) SetRef(r Ref, t TypeID, field int, v Ref) {
	db.latch(db.s.SetRef(epvm.Ref(r), db.off(t, field), epvm.Ref(v)))
}

// GetBytes implements the DB interface for E.
func (db *eDB) GetBytes(r Ref, t TypeID, field int, buf []byte) {
	db.latch(db.s.GetBytes(epvm.Ref(r), db.off(t, field), buf))
}

// SetBytes implements the DB interface for E.
func (db *eDB) SetBytes(r Ref, t TypeID, field int, data []byte) {
	db.latch(db.s.SetBytes(epvm.Ref(r), db.off(t, field), data))
}

// SetTail implements the DB interface for E.
func (db *eDB) SetTail(r Ref, t TypeID, data []byte) {
	db.latch(db.s.SetBytes(epvm.Ref(r), db.lays[t].Size, data))
}

// GetTailByte reads one character of an inline document text; in E this is
// still an in-object access behind a residency check.
func (db *eDB) GetTailByte(r Ref, t TypeID, i int) byte {
	var b [1]byte
	db.latch(db.s.GetBytes(epvm.Ref(r), db.lays[t].Size+i, b[:]))
	return b[0]
}

// WriteLarge implements the DB interface for E.
func (db *eDB) WriteLarge(r Ref, data []byte, off uint64) {
	db.latch(db.s.WriteLarge(epvm.Ref(r), data, off))
}

// ReadLargeByte goes through the interpreter on every call (T8's cost).
func (db *eDB) ReadLargeByte(r Ref, off uint64) byte {
	b, err := db.s.ReadLargeByte(epvm.Ref(r), off)
	db.latch(err)
	return b
}

// LargeSize implements the DB interface for E.
func (db *eDB) LargeSize(r Ref) uint64 {
	n, err := db.s.LargeSize(epvm.Ref(r))
	db.latch(err)
	return n
}

// --- Index integration ------------------------------------------------------

type eIndex struct {
	db   *eDB
	tree *btree.Tree
}

// CreateIndex implements the DB interface for E.
func (db *eDB) CreateIndex(name string) Index {
	tree, err := btree.Create(db.s.Client())
	if err != nil {
		db.latch(err)
		return eIndex{db: db}
	}
	db.latch(db.s.Client().SetRoot("idx:"+name, esm.NilOID, uint64(tree.RootPage())))
	db.idx[name] = tree
	return eIndex{db: db, tree: tree}
}

// Index implements the DB interface for E.
func (db *eDB) Index(name string) Index {
	if t, ok := db.idx[name]; ok {
		return eIndex{db: db, tree: t}
	}
	_, aux, err := db.s.Client().GetRoot("idx:" + name)
	if err != nil {
		db.latch(err)
		return eIndex{db: db}
	}
	t := btree.Open(db.s.Client(), disk.PageID(aux))
	db.idx[name] = t
	return eIndex{db: db, tree: t}
}

func (ix eIndex) ins(k btree.Key, r Ref) {
	if ix.tree == nil {
		return
	}
	oid, err := ix.db.s.OIDOf(epvm.Ref(r))
	if err != nil {
		ix.db.latch(err)
		return
	}
	ix.db.latch(ix.tree.Insert(k, oid))
}

func (ix eIndex) look(k btree.Key) []Ref {
	if ix.tree == nil {
		return nil
	}
	oids, err := ix.tree.Lookup(k)
	if err != nil {
		ix.db.latch(err)
		return nil
	}
	refs := make([]Ref, 0, len(oids))
	for _, oid := range oids {
		refs = append(refs, Ref(ix.db.s.RefFor(oid)))
	}
	return refs
}

// InsertInt implements the Index interface.
func (ix eIndex) InsertInt(k int64, r Ref) { ix.ins(btree.IntKey(k), r) }

// LookupInt implements the Index interface.
func (ix eIndex) LookupInt(k int64) []Ref { return ix.look(btree.IntKey(k)) }

// InsertString implements the Index interface.
func (ix eIndex) InsertString(k string, r Ref) { ix.ins(btree.StringKey(k), r) }

// LookupString implements the Index interface.
func (ix eIndex) LookupString(k string) []Ref { return ix.look(btree.StringKey(k)) }

// ScanInt implements the Index interface.
func (ix eIndex) ScanInt(lo, hi int64, fn func(int64, Ref) bool) {
	if ix.tree == nil {
		return
	}
	err := ix.tree.ScanRange(btree.IntKey(lo), btree.IntKey(hi), func(k btree.Key, oid esm.OID) bool {
		return fn(btreeKeyInt(k), Ref(ix.db.s.RefFor(oid)))
	})
	ix.db.latch(err)
}

// DeleteInt implements the Index interface.
func (ix eIndex) DeleteInt(k int64, r Ref) { ix.del(btree.IntKey(k), r) }

// DeleteString implements the Index interface.
func (ix eIndex) DeleteString(k string, r Ref) { ix.del(btree.StringKey(k), r) }

func (ix eIndex) del(k btree.Key, r Ref) {
	if ix.tree == nil {
		return
	}
	oid, err := ix.db.s.OIDOf(epvm.Ref(r))
	if err != nil {
		ix.db.latch(err)
		return
	}
	_, err = ix.tree.Delete(k, oid)
	ix.db.latch(err)
}
