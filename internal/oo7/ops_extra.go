package oo7

import (
	"fmt"
	"math/rand"
)

// This file implements the OO7 operations the paper's study omitted
// ("some of the OO7 operations were omitted because they didn't highlight
// any additional differences among the systems"): the remaining queries
// Q6–Q8 and the structural modification operations. They complete the
// benchmark implementation and exercise object deletion, which the paper
// only discusses (Section 4.5.2).

// Q6 is the all-level make: find every assembly (base or complex) that
// uses — directly for base assemblies, through any descendant for complex
// ones — a composite part with a build date later than the assembly's own.
// Returns the number of qualifying assemblies.
func Q6(db DB) (int, error) {
	return run(db, func() (int, error) {
		module := db.Root("module")
		rootAsm := db.GetRef(module, TModule, ModRoot)
		if rootAsm == NilRef {
			return 0, fmt.Errorf("oo7: module has no design root")
		}
		count := 0
		// walk returns the maximum composite-part build date in the
		// assembly's subtree and counts qualifying assemblies on the way.
		var walk func(asm Ref) int32
		walk = func(asm Ref) int32 {
			bd := db.GetI32(asm, TComplexAssembly, CAsmBuildDate)
			var maxComp int32 = -1
			if db.GetI32(asm, TComplexAssembly, CAsmLevel) < 0 {
				// Base assembly: direct composite parts.
				for _, f := range [3]int{BAsmComp0, BAsmComp1, BAsmComp2} {
					comp := db.GetRef(asm, TBaseAssembly, f)
					if comp == NilRef {
						continue
					}
					if d := db.GetI32(comp, TCompositePart, CompBuildDate); d > maxComp {
						maxComp = d
					}
				}
			} else {
				for _, f := range [3]int{CAsmSub0, CAsmSub1, CAsmSub2} {
					sub := db.GetRef(asm, TComplexAssembly, f)
					if sub == NilRef {
						continue
					}
					if d := walk(sub); d > maxComp {
						maxComp = d
					}
				}
			}
			if maxComp > bd {
				count++
			}
			return maxComp
		}
		walk(rootAsm)
		return count, db.Err()
	})
}

// Q7 scans every atomic part (via the id index, as the paper's hand-coded
// queries use the ESM B-trees) and counts them; the per-part touch forces
// the object access that makes this a real scan.
func Q7(db DB, p Params) (int, error) {
	return run(db, func() (int, error) {
		count := 0
		db.Index(IdxPartID).ScanInt(1, int64(p.NumAtomicParts()), func(k int64, part Ref) bool {
			chargeIter(db)
			_ = db.GetI32(part, TAtomicPart, APartX)
			count++
			return true
		})
		return count, nil
	})
}

// Q8 joins atomic parts with documents on the part's docId: for each part
// of a sample of composite parts, the document with id == docId is fetched
// through the title index. Returns the number of joined pairs.
func Q8(db DB, p Params, seed int64) (int, error) {
	return run(db, func() (int, error) {
		rng := rand.New(rand.NewSource(seed))
		idx := db.Index(IdxDocTitle)
		pairs := 0
		// The full O(|parts|) join is run on a composite-part sample to
		// keep the medium configuration tractable; each sampled composite
		// joins all of its parts.
		samples := 25
		if samples > p.NumCompPerModule {
			samples = p.NumCompPerModule
		}
		partIdx := db.Index(IdxPartID)
		for i := 0; i < samples; i++ {
			compID := 1 + rng.Intn(p.NumCompPerModule)
			firstPart := int64(compID-1)*int64(p.NumAtomicPerComp) + 1
			for pi := int64(0); pi < int64(p.NumAtomicPerComp); pi++ {
				for _, part := range partIdx.LookupInt(firstPart + pi) {
					docID := db.GetI32(part, TAtomicPart, APartDocID)
					for _, doc := range idx.LookupString(TitleOf(int(docID))) {
						if db.GetI32(doc, TDocument, DocID) == docID {
							pairs++
						}
					}
				}
			}
		}
		return pairs, nil
	})
}

// extrasRoot names the chain of composite parts created by StructuralInsert.
const extrasRoot = "oo7.extras"

// StructuralInsert creates n new composite parts — each with its document,
// atomic-part graph, connections, and index entries — and chains them from
// a persistent root so StructuralDelete can find them. Returns the number
// of objects created.
func StructuralInsert(db DB, p Params, n int, seed int64) (int, error) {
	return run(db, func() (int, error) {
		rng := rand.New(rand.NewSource(seed))
		idxID := db.Index(IdxPartID)
		idxDate := db.Index(IdxPartDate)
		idxTitle := db.Index(IdxDocTitle)
		cl := db.NewCluster()
		created := 0
		var chain Ref // existing chain, if any
		if prev, err := tryRoot(db, extrasRoot); err == nil {
			chain = prev
		}
		db.ClearErr() // a missing extras root is expected on first insert
		docText := make([]byte, 128)
		for i := range docText {
			docText[i] = byte('A' + i%26)
		}
		nextPartID := int32(p.NumAtomicParts() + 1000000) // out of the generator's id space
		for k := 0; k < n; k++ {
			cl.Break()
			compID := int32(p.NumCompPerModule + 1000 + k)
			comp := db.Alloc(cl, TCompositePart, 0)
			db.SetI32(comp, TCompositePart, CompID, compID)
			db.SetI32(comp, TCompositePart, CompBuildDate, int32(p.MinAtomicDate+rng.Intn(1000)))
			created++

			doc := db.Alloc(cl, TDocument, len(docText))
			db.SetI32(doc, TDocument, DocID, compID)
			db.SetRef(doc, TDocument, DocPart, comp)
			db.SetI32(doc, TDocument, DocTextLen, int32(len(docText)))
			db.SetTail(doc, TDocument, docText)
			title := TitleOf(int(compID))
			var tbuf [40]byte
			copy(tbuf[:], title)
			db.SetBytes(doc, TDocument, DocTitle, tbuf[:])
			idxTitle.InsertString(title, doc)
			db.SetRef(comp, TCompositePart, CompDoc, doc)
			created++

			const parts = 4
			refs := make([]Ref, parts)
			for pi := 0; pi < parts; pi++ {
				refs[pi] = db.Alloc(cl, TAtomicPart, 0)
				created++
			}
			connField := [3]int{APartConn0, APartConn1, APartConn2}
			for pi := 0; pi < parts; pi++ {
				part := refs[pi]
				bd := int32(p.MinAtomicDate + rng.Intn(1000))
				db.SetI32(part, TAtomicPart, APartID, nextPartID)
				db.SetI32(part, TAtomicPart, APartBuildDate, bd)
				db.SetI32(part, TAtomicPart, APartDocID, compID)
				db.SetRef(part, TAtomicPart, APartPartOf, comp)
				idxID.InsertInt(int64(nextPartID), part)
				idxDate.InsertInt(int64(bd), part)
				nextPartID++
				for c := 0; c < 3; c++ {
					conn := db.Alloc(cl, TConnection, 0)
					to := refs[(pi+1+c)%parts]
					db.SetRef(conn, TConnection, ConnFrom, part)
					db.SetRef(conn, TConnection, ConnTo, to)
					db.SetRef(conn, TConnection, ConnFromNext, db.GetRef(to, TAtomicPart, APartInConn))
					db.SetRef(to, TAtomicPart, APartInConn, conn)
					db.SetRef(part, TAtomicPart, connField[c], conn)
					created++
				}
			}
			db.SetRef(comp, TCompositePart, CompRootPart, refs[0])

			link := db.Alloc(cl, TExtraLink, 0)
			db.SetRef(link, TExtraLink, ExtraComp, comp)
			db.SetRef(link, TExtraLink, ExtraNext, chain)
			chain = link
			created++
		}
		db.SetRoot(extrasRoot, chain)
		return created, db.Err()
	})
}

// tryRoot resolves a root that may not exist yet.
func tryRoot(db DB, name string) (Ref, error) {
	r := db.Root(name)
	if err := db.Err(); err != nil {
		return NilRef, err
	}
	return r, nil
}

// StructuralDelete removes every composite part created by StructuralInsert:
// connections, atomic parts (with their index entries), the document (with
// its title index entry), the composite part itself, and the chain links.
// Returns the number of objects deleted.
func StructuralDelete(db DB) (int, error) {
	return run(db, func() (int, error) {
		link, err := tryRoot(db, extrasRoot)
		if err != nil || link == NilRef {
			db.ClearErr()
			return 0, nil // nothing inserted
		}
		idxID := db.Index(IdxPartID)
		idxDate := db.Index(IdxPartDate)
		deleted := 0
		for link != NilRef {
			comp := db.GetRef(link, TExtraLink, ExtraComp)
			// Collect the part graph.
			var parts, conns []Ref
			traverseGraph(db, comp, func(part Ref) {
				parts = append(parts, part)
				for _, f := range [3]int{APartConn0, APartConn1, APartConn2} {
					if c := db.GetRef(part, TAtomicPart, f); c != NilRef {
						conns = append(conns, c)
					}
				}
			})
			for _, c := range conns {
				db.Delete(c, TConnection)
				deleted++
			}
			for _, part := range parts {
				idxID.DeleteInt(int64(db.GetI32(part, TAtomicPart, APartID)), part)
				idxDate.DeleteInt(int64(db.GetI32(part, TAtomicPart, APartBuildDate)), part)
				db.Delete(part, TAtomicPart)
				deleted++
			}
			if doc := db.GetRef(comp, TCompositePart, CompDoc); doc != NilRef {
				var tbuf [40]byte
				db.GetBytes(doc, TDocument, DocTitle, tbuf[:])
				title := string(tbuf[:len(TitleOf(0))])
				db.Index(IdxDocTitle).DeleteString(title, doc)
				db.Delete(doc, TDocument)
				deleted++
			}
			db.Delete(comp, TCompositePart)
			deleted++
			next := db.GetRef(link, TExtraLink, ExtraNext)
			db.Delete(link, TExtraLink)
			deleted++
			link = next
		}
		db.SetRoot(extrasRoot, NilRef)
		return deleted, db.Err()
	})
}
