package oo7

import (
	"fmt"

	"quickstore/internal/btree"
	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/schema"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
)

// qsDB runs the benchmark over QuickStore. References are raw virtual
// addresses; every field access is a protected virtual-memory access. With
// padded layouts this is the paper's QS-B system.
type qsDB struct {
	name string
	s    *core.Store
	sp   *vmem.Space
	lays [numTypes]schema.Layout
	idx  map[string]*btree.Tree
	err  error
}

// NewQS wraps a QuickStore session as a benchmark driver. padded selects
// the QS-B object layouts.
func NewQS(s *core.Store, padded bool) DB {
	db := &qsDB{s: s, sp: s.Space(), idx: map[string]*btree.Tree{}}
	if padded {
		db.name = "QS-B"
		db.lays = PaddedLayouts()
	} else {
		db.name = "QS"
		db.lays = Layouts(8)
	}
	return db
}

// Name implements the DB interface for QuickStore.
func (db *qsDB) Name() string { return db.name }

// Err implements the DB interface for QuickStore.
func (db *qsDB) Err() error { return db.err }

// ClearErr implements the DB interface for QuickStore.
func (db *qsDB) ClearErr() { db.err = nil }

// Clock implements the DB interface for QuickStore.
func (db *qsDB) Clock() *sim.Clock { return db.s.Clock() }

func (db *qsDB) latch(err error) {
	if err != nil && db.err == nil {
		db.err = err
	}
}

// Begin implements the DB interface for QuickStore.
func (db *qsDB) Begin() error { return db.s.Begin() }

// Commit implements the DB interface for QuickStore.
func (db *qsDB) Commit() error {
	if db.err != nil {
		err := db.err
		//qsvet:ignore mustcheck best-effort rollback; the latched error is what the caller must see
		_ = db.s.Abort()
		return fmt.Errorf("oo7/%s: latched error at commit: %w", db.name, err)
	}
	return db.s.Commit()
}

// Abort implements the DB interface for QuickStore.
func (db *qsDB) Abort() error { return db.s.Abort() }

// SetRoot implements the DB interface for QuickStore.
func (db *qsDB) SetRoot(name string, r Ref) { db.latch(db.s.SetRoot(name, core.Ref(r))) }

// Root implements the DB interface for QuickStore.
func (db *qsDB) Root(name string) Ref {
	ref, err := db.s.Root(name)
	db.latch(err)
	return Ref(ref)
}

type qsCluster struct{ cl *core.Cluster }

// Break implements the DB interface for QuickStore.
func (c qsCluster) Break() { c.cl.Break() }

// NewCluster implements the DB interface for QuickStore.
func (db *qsDB) NewCluster() Cluster { return qsCluster{cl: db.s.NewCluster()} }

// Alloc implements the DB interface for QuickStore.
func (db *qsDB) Alloc(cl Cluster, t TypeID, extra int) Ref {
	lay := &db.lays[t]
	ref, err := db.s.Alloc(cl.(qsCluster).cl, lay.Size+extra, lay.RefOffsets)
	db.latch(err)
	return Ref(ref)
}

// AllocLarge implements the DB interface for QuickStore.
func (db *qsDB) AllocLarge(cl Cluster, size uint64) Ref {
	ref, err := db.s.AllocLarge(cl.(qsCluster).cl, size)
	db.latch(err)
	return Ref(ref)
}

func (db *qsDB) addr(r Ref, t TypeID, field int) vmem.Addr {
	return vmem.Addr(r) + vmem.Addr(db.lays[t].Offsets[field])
}

// Delete implements the DB interface for QuickStore.
func (db *qsDB) Delete(r Ref, t TypeID) {
	_ = t // layouts are not needed: the slot directory knows the extent
	db.latch(db.s.Delete(core.Ref(r)))
}

// GetI32 implements the DB interface for QuickStore.
func (db *qsDB) GetI32(r Ref, t TypeID, field int) int32 {
	v, err := db.sp.ReadU32(db.addr(r, t, field))
	db.latch(err)
	db.Clock().Charge(sim.CtrFieldRead, 1)
	return int32(v)
}

// SetI32 implements the DB interface for QuickStore.
func (db *qsDB) SetI32(r Ref, t TypeID, field int, v int32) {
	db.latch(db.sp.WriteU32(db.addr(r, t, field), uint32(v)))
	db.Clock().Charge(sim.CtrFieldWrite, 1)
}

// GetRef is the QuickStore dereference: one ordinary 8-byte load through
// virtual memory — no residency check, no interpreter.
func (db *qsDB) GetRef(r Ref, t TypeID, field int) Ref {
	v, err := db.sp.ReadU64(db.addr(r, t, field))
	db.latch(err)
	db.Clock().Charge(sim.CtrDeref, 1)
	return Ref(v)
}

// SetRef implements the DB interface for QuickStore.
func (db *qsDB) SetRef(r Ref, t TypeID, field int, v Ref) {
	db.latch(db.sp.WriteU64(db.addr(r, t, field), uint64(v)))
	db.Clock().Charge(sim.CtrFieldWrite, 1)
}

// GetBytes implements the DB interface for QuickStore.
func (db *qsDB) GetBytes(r Ref, t TypeID, field int, buf []byte) {
	db.latch(db.sp.ReadInto(db.addr(r, t, field), buf))
	db.Clock().Charge(sim.CtrFieldRead, 1)
}

// SetBytes implements the DB interface for QuickStore.
func (db *qsDB) SetBytes(r Ref, t TypeID, field int, data []byte) {
	db.latch(db.sp.WriteBytes(db.addr(r, t, field), data))
	db.Clock().Charge(sim.CtrFieldWrite, 1)
}

// SetTail implements the DB interface for QuickStore.
func (db *qsDB) SetTail(r Ref, t TypeID, data []byte) {
	db.latch(db.sp.WriteBytes(vmem.Addr(r)+vmem.Addr(db.lays[t].Size), data))
	db.Clock().Charge(sim.CtrFieldWrite, 1)
}

// GetTailByte implements the DB interface for QuickStore.
func (db *qsDB) GetTailByte(r Ref, t TypeID, i int) byte {
	b, err := db.sp.ReadU8(vmem.Addr(r) + vmem.Addr(db.lays[t].Size+i))
	db.latch(err)
	db.Clock().Charge(sim.CtrByteScan, 1)
	return b
}

// WriteLarge implements the DB interface for QuickStore.
func (db *qsDB) WriteLarge(r Ref, data []byte, off uint64) {
	db.latch(db.s.LargeWrite(core.Ref(r), data, off))
}

// ReadLargeByte is a plain pointer dereference into the mapped manual.
func (db *qsDB) ReadLargeByte(r Ref, off uint64) byte {
	b, err := db.sp.ReadU8(vmem.Addr(r) + vmem.Addr(off))
	db.latch(err)
	db.Clock().Charge(sim.CtrByteScan, 1)
	return b
}

// LargeSize implements the DB interface for QuickStore.
func (db *qsDB) LargeSize(r Ref) uint64 {
	n, err := db.s.LargeSize(core.Ref(r))
	db.latch(err)
	return n
}

// --- Index integration ------------------------------------------------------

// Index values are stored as <data page, byte offset> pairs packed into the
// OID value slot; RefForPage turns them back into virtual addresses,
// entering pages into the mapping on demand.
func (db *qsDB) encodeRef(r Ref) (esm.OID, error) {
	pid, off, err := db.s.PageOf(core.Ref(r))
	if err != nil {
		return esm.NilOID, err
	}
	return esm.OID{Page: pid, Slot: uint16(off), File: 0xFFFF}, nil
}

func (db *qsDB) decodeRef(oid esm.OID) (Ref, error) {
	ref, err := db.s.RefForPage(oid.Page, int(oid.Slot))
	return Ref(ref), err
}

type qsIndex struct {
	db   *qsDB
	tree *btree.Tree
}

// CreateIndex implements the DB interface for QuickStore.
func (db *qsDB) CreateIndex(name string) Index {
	tree, err := btree.Create(db.s.Client())
	if err != nil {
		db.latch(err)
		return qsIndex{db: db}
	}
	db.latch(db.s.Client().SetRoot("idx:"+name, esm.NilOID, uint64(tree.RootPage())))
	db.idx[name] = tree
	return qsIndex{db: db, tree: tree}
}

// Index implements the DB interface for QuickStore.
func (db *qsDB) Index(name string) Index {
	if t, ok := db.idx[name]; ok {
		return qsIndex{db: db, tree: t}
	}
	_, aux, err := db.s.Client().GetRoot("idx:" + name)
	if err != nil {
		db.latch(err)
		return qsIndex{db: db}
	}
	t := btree.Open(db.s.Client(), disk.PageID(aux))
	db.idx[name] = t
	return qsIndex{db: db, tree: t}
}

func (ix qsIndex) ins(k btree.Key, r Ref) {
	if ix.tree == nil {
		return
	}
	oid, err := ix.db.encodeRef(r)
	if err != nil {
		ix.db.latch(err)
		return
	}
	ix.db.latch(ix.tree.Insert(k, oid))
}

func (ix qsIndex) look(k btree.Key) []Ref {
	if ix.tree == nil {
		return nil
	}
	oids, err := ix.tree.Lookup(k)
	if err != nil {
		ix.db.latch(err)
		return nil
	}
	refs := make([]Ref, 0, len(oids))
	for _, oid := range oids {
		r, err := ix.db.decodeRef(oid)
		if err != nil {
			ix.db.latch(err)
			return refs
		}
		refs = append(refs, r)
	}
	return refs
}

// InsertInt implements the Index interface.
func (ix qsIndex) InsertInt(k int64, r Ref) { ix.ins(btree.IntKey(k), r) }

// LookupInt implements the Index interface.
func (ix qsIndex) LookupInt(k int64) []Ref { return ix.look(btree.IntKey(k)) }

// InsertString implements the Index interface.
func (ix qsIndex) InsertString(k string, r Ref) { ix.ins(btree.StringKey(k), r) }

// LookupString implements the Index interface.
func (ix qsIndex) LookupString(k string) []Ref { return ix.look(btree.StringKey(k)) }

// ScanInt implements the Index interface.
func (ix qsIndex) ScanInt(lo, hi int64, fn func(int64, Ref) bool) {
	if ix.tree == nil {
		return
	}
	err := ix.tree.ScanRange(btree.IntKey(lo), btree.IntKey(hi), func(k btree.Key, oid esm.OID) bool {
		r, err := ix.db.decodeRef(oid)
		if err != nil {
			ix.db.latch(err)
			return false
		}
		return fn(btreeKeyInt(k), r)
	})
	ix.db.latch(err)
}

// DeleteInt implements the Index interface.
func (ix qsIndex) DeleteInt(k int64, r Ref) { ix.del(btree.IntKey(k), r) }

// DeleteString implements the Index interface.
func (ix qsIndex) DeleteString(k string, r Ref) { ix.del(btree.StringKey(k), r) }

func (ix qsIndex) del(k btree.Key, r Ref) {
	if ix.tree == nil {
		return
	}
	oid, err := ix.db.encodeRef(r)
	if err != nil {
		ix.db.latch(err)
		return
	}
	_, err = ix.tree.Delete(k, oid)
	ix.db.latch(err)
}

// btreeKeyInt decodes an order-preserving int64 key.
func btreeKeyInt(k btree.Key) int64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x = x<<8 | uint64(k[i])
	}
	return int64(x ^ (1 << 63))
}
