package oo7

import (
	"fmt"
	"math/rand"
)

// The OO7 operations (Section 4.2). Each runs inside its own transaction
// and returns an integer result (visit count, update count, character
// count, ...) that must agree across all three systems — the harness and
// tests verify this.

// UpdateKind selects the T2/T3 variant.
type UpdateKind int

// Update variants: A updates the root atomic part of each composite part,
// B all atomic parts, C all atomic parts four times.
const (
	VariantA UpdateKind = iota
	VariantB
	VariantC
)

// String names the variant ("A", "B", "C").
func (v UpdateKind) String() string { return [...]string{"A", "B", "C"}[v] }

// run wraps an operation in a transaction with error propagation.
func run(db DB, op func() (int, error)) (int, error) {
	if err := db.Begin(); err != nil {
		return 0, err
	}
	n, err := op()
	if err != nil {
		_ = db.Abort()
		return 0, err
	}
	if err := db.Err(); err != nil {
		_ = db.Abort()
		return 0, fmt.Errorf("oo7/%s: %w", db.Name(), err)
	}
	return n, db.Commit()
}

// traverseGraph depth-first-searches a composite part's atomic-part graph
// from its root part, calling visit for each part seen for the first time
// in this search. It returns the number of parts visited. A transient
// "iterator" is charged per node and a part-id set operation per check,
// mirroring the transient-structure costs of Table 7.
func traverseGraph(db DB, comp Ref, visit func(part Ref)) int {
	root := db.GetRef(comp, TCompositePart, CompRootPart)
	visited := make(map[int32]bool)
	var dfs func(part Ref) int
	dfs = func(part Ref) int {
		chargePartSet(db)
		id := db.GetI32(part, TAtomicPart, APartID)
		if visited[id] {
			return 0
		}
		visited[id] = true
		if visit != nil {
			visit(part)
		}
		chargeIter(db)
		count := 1
		for _, f := range [3]int{APartConn0, APartConn1, APartConn2} {
			conn := db.GetRef(part, TAtomicPart, f)
			if conn == NilRef {
				continue
			}
			count += dfs(db.GetRef(conn, TConnection, ConnTo))
		}
		return count
	}
	if root == NilRef {
		return 0
	}
	return dfs(root)
}

// forEachBaseAssembly walks the assembly hierarchy depth-first from the
// module's design root, calling fn at each base assembly. Base assemblies
// are recognized by their negated level field, which both assembly types
// keep at the same byte offset (the C++ benchmark's static type knowledge).
func forEachBaseAssembly(db DB, fn func(base Ref)) error {
	module := db.Root("module")
	rootAsm := db.GetRef(module, TModule, ModRoot)
	var down func(asm Ref)
	down = func(asm Ref) {
		for _, f := range [3]int{CAsmSub0, CAsmSub1, CAsmSub2} {
			sub := db.GetRef(asm, TComplexAssembly, f)
			if sub == NilRef {
				continue
			}
			if db.GetI32(sub, TComplexAssembly, CAsmLevel) < 0 {
				fn(sub)
			} else {
				down(sub)
			}
		}
	}
	if rootAsm == NilRef {
		return fmt.Errorf("oo7: module has no design root")
	}
	if db.GetI32(rootAsm, TComplexAssembly, CAsmLevel) < 0 {
		fn(rootAsm) // degenerate one-level hierarchy
	} else {
		down(rootAsm)
	}
	return db.Err()
}

// T1 performs the dense read-only traversal: DFS of the assembly
// hierarchy; at each base assembly, DFS the atomic-part graph of each of
// its composite parts. Returns the number of atomic parts visited.
func T1(db DB) (int, error) {
	return run(db, func() (int, error) {
		total := 0
		err := forEachBaseAssembly(db, func(base Ref) {
			for _, f := range [3]int{BAsmComp0, BAsmComp1, BAsmComp2} {
				comp := db.GetRef(base, TBaseAssembly, f)
				if comp == NilRef {
					continue
				}
				total += traverseGraph(db, comp, nil)
			}
		})
		return total, err
	})
}

// T6 performs the sparse traversal: like T1, but visits only the root
// atomic part of each composite part.
func T6(db DB) (int, error) {
	return run(db, func() (int, error) {
		total := 0
		err := forEachBaseAssembly(db, func(base Ref) {
			for _, f := range [3]int{BAsmComp0, BAsmComp1, BAsmComp2} {
				comp := db.GetRef(base, TBaseAssembly, f)
				if comp == NilRef {
					continue
				}
				root := db.GetRef(comp, TCompositePart, CompRootPart)
				if root == NilRef {
					continue
				}
				_ = db.GetI32(root, TAtomicPart, APartID)
				total++
			}
		})
		return total, err
	})
}

// T2 is T1 with updates to the (x, y) attributes. Per the paper's variant
// of the benchmark, the attributes are incremented rather than swapped so
// repeated updates change the value and the diffing scheme always produces
// log records.
func T2(db DB, kind UpdateKind) (int, error) {
	return run(db, func() (int, error) {
		updates := 0
		bump := func(part Ref) {
			db.SetI32(part, TAtomicPart, APartX, db.GetI32(part, TAtomicPart, APartX)+1)
			db.SetI32(part, TAtomicPart, APartY, db.GetI32(part, TAtomicPart, APartY)+1)
			updates++
		}
		err := forEachBaseAssembly(db, func(base Ref) {
			for _, f := range [3]int{BAsmComp0, BAsmComp1, BAsmComp2} {
				comp := db.GetRef(base, TBaseAssembly, f)
				if comp == NilRef {
					continue
				}
				switch kind {
				case VariantA:
					traverseGraph(db, comp, nil)
					root := db.GetRef(comp, TCompositePart, CompRootPart)
					bump(root)
				case VariantB:
					traverseGraph(db, comp, bump)
				case VariantC:
					traverseGraph(db, comp, func(p Ref) {
						for i := 0; i < 4; i++ {
							bump(p)
						}
					})
				}
			}
		})
		return updates, err
	})
}

// T3 is T2 on the indexed buildDate attribute: every update also deletes
// and reinserts the part's entry in the buildDate index.
func T3(db DB, kind UpdateKind) (int, error) {
	return run(db, func() (int, error) {
		idx := db.Index(IdxPartDate)
		updates := 0
		bump := func(part Ref) {
			old := db.GetI32(part, TAtomicPart, APartBuildDate)
			idx.DeleteInt(int64(old), part)
			db.SetI32(part, TAtomicPart, APartBuildDate, old+1)
			idx.InsertInt(int64(old+1), part)
			updates++
		}
		err := forEachBaseAssembly(db, func(base Ref) {
			for _, f := range [3]int{BAsmComp0, BAsmComp1, BAsmComp2} {
				comp := db.GetRef(base, TBaseAssembly, f)
				if comp == NilRef {
					continue
				}
				switch kind {
				case VariantA:
					traverseGraph(db, comp, nil)
					bump(db.GetRef(comp, TCompositePart, CompRootPart))
				case VariantB:
					traverseGraph(db, comp, bump)
				case VariantC:
					traverseGraph(db, comp, func(p Ref) {
						for i := 0; i < 4; i++ {
							bump(p)
						}
					})
				}
			}
		})
		return updates, err
	})
}

// T7 picks a random atomic part (via the id index) and traverses up to the
// root of the design hierarchy. Returns the number of objects on the path.
func T7(db DB, p Params, seed int64) (int, error) {
	return run(db, func() (int, error) {
		rng := rand.New(rand.NewSource(seed))
		id := int64(1 + rng.Intn(p.NumAtomicParts()))
		refs := db.Index(IdxPartID).LookupInt(id)
		if len(refs) == 0 {
			return 0, fmt.Errorf("oo7: atomic part %d not found", id)
		}
		part := refs[0]
		visited := 1
		comp := db.GetRef(part, TAtomicPart, APartPartOf)
		visited++
		link := db.GetRef(comp, TCompositePart, CompUsedIn)
		if link == NilRef {
			return visited, nil // composite part used by no assembly
		}
		visited++
		asm := db.GetRef(link, TUseLink, UseAssembly)
		visited++
		// Up through the base assembly's super chain to the root.
		super := db.GetRef(asm, TBaseAssembly, BAsmSuper)
		for super != NilRef {
			visited++
			super = db.GetRef(super, TComplexAssembly, CAsmSuper)
		}
		return visited, nil
	})
}

// T8 scans the module's manual counting occurrences of ManualProbe,
// character by character.
func T8(db DB) (int, error) {
	return run(db, func() (int, error) {
		module := db.Root("module")
		man := db.GetRef(module, TModule, ModManual)
		size := uint64(db.GetI32(module, TModule, ModManSize))
		count := 0
		for i := uint64(0); i < size; i++ {
			if db.ReadLargeByte(man, i) == ManualProbe {
				count++
			}
		}
		return count, db.Err()
	})
}

// T9 compares the first and last characters of the manual; returns 1 when
// they match.
func T9(db DB) (int, error) {
	return run(db, func() (int, error) {
		module := db.Root("module")
		man := db.GetRef(module, TModule, ModManual)
		size := uint64(db.GetI32(module, TModule, ModManSize))
		first := db.ReadLargeByte(man, 0)
		last := db.ReadLargeByte(man, size-1)
		if first == last {
			return 1, nil
		}
		return 0, nil
	})
}

// Q1 retrieves 10 atomic parts at random through the id index; returns the
// number found.
func Q1(db DB, p Params, seed int64) (int, error) {
	return run(db, func() (int, error) {
		rng := rand.New(rand.NewSource(seed))
		idx := db.Index(IdxPartID)
		found := 0
		for i := 0; i < 10; i++ {
			id := int64(1 + rng.Intn(p.NumAtomicParts()))
			for _, part := range idx.LookupInt(id) {
				chargeIter(db)
				_ = db.GetI32(part, TAtomicPart, APartX)
				found++
			}
		}
		return found, nil
	})
}

// qDateRange runs the Q2/Q3 index scan over the most recent fraction of
// buildDates, touching each part returned.
func qDateRange(db DB, p Params, percent int) (int, error) {
	return run(db, func() (int, error) {
		span := p.MaxAtomicDate - p.MinAtomicDate + 1
		lo := int64(p.MaxAtomicDate - span*percent/100 + 1)
		hi := int64(p.MaxAtomicDate)
		count := 0
		db.Index(IdxPartDate).ScanInt(lo, hi, func(k int64, part Ref) bool {
			chargeIter(db)
			_ = db.GetI32(part, TAtomicPart, APartX)
			count++
			return true
		})
		return count, nil
	})
}

// Q2 selects the most recent 1% of atomic parts by buildDate.
func Q2(db DB, p Params) (int, error) { return qDateRange(db, p, 1) }

// Q3 selects the most recent 10% of atomic parts by buildDate.
func Q3(db DB, p Params) (int, error) { return qDateRange(db, p, 10) }

// Q4 looks up 10 documents by title and visits every base assembly using
// the corresponding composite part; returns the number of base assemblies
// touched.
func Q4(db DB, p Params, seed int64) (int, error) {
	return run(db, func() (int, error) {
		rng := rand.New(rand.NewSource(seed))
		idx := db.Index(IdxDocTitle)
		count := 0
		for i := 0; i < 10; i++ {
			title := TitleOf(1 + rng.Intn(p.NumCompPerModule))
			for _, doc := range idx.LookupString(title) {
				comp := db.GetRef(doc, TDocument, DocPart)
				for link := db.GetRef(comp, TCompositePart, CompUsedIn); link != NilRef; link = db.GetRef(link, TUseLink, UseNext) {
					chargeIter(db)
					base := db.GetRef(link, TUseLink, UseAssembly)
					_ = db.GetI32(base, TBaseAssembly, BAsmID)
					count++
				}
			}
		}
		return count, nil
	})
}

// Q5 is the single-level make: find base assemblies using a composite part
// with a build date later than the assembly's own (a nested-loops pointer
// join over the module's base-assembly collection).
func Q5(db DB) (int, error) {
	return run(db, func() (int, error) {
		module := db.Root("module")
		count := 0
		for base := db.GetRef(module, TModule, ModBAsmHead); base != NilRef; base = db.GetRef(base, TBaseAssembly, BAsmNext) {
			bd := db.GetI32(base, TBaseAssembly, BAsmBuildDate)
			for _, f := range [3]int{BAsmComp0, BAsmComp1, BAsmComp2} {
				comp := db.GetRef(base, TBaseAssembly, f)
				if comp == NilRef {
					continue
				}
				if db.GetI32(comp, TCompositePart, CompBuildDate) > bd {
					count++
					break
				}
			}
		}
		return count, db.Err()
	})
}
