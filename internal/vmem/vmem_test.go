package vmem

import (
	"errors"
	"testing"
	"testing/quick"

	"quickstore/internal/sim"
)

const testBase Addr = 0x1000000000

func newSpace() *Space {
	return NewSpace(testBase, 64, sim.NewClock(sim.DefaultCostModel()))
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.FrameBase() != 0x12000 {
		t.Fatalf("FrameBase = %#x", a.FrameBase())
	}
	if a.Offset() != 0x345 {
		t.Fatalf("Offset = %#x", a.Offset())
	}
}

func TestMapReadWrite(t *testing.T) {
	s := newSpace()
	data := make([]byte, FrameSize)
	if err := s.Map(testBase, data, ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteU64(testBase+16, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadU64(testBase + 16)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	// The mapping aliases the caller's slice — in-place buffer access.
	if data[16] != 0xBE {
		t.Fatal("write did not land in the backing slice")
	}
	// 8/16/32-bit accessors.
	s.WriteU8(testBase, 7)
	s.WriteU16(testBase+2, 0x1234)
	s.WriteU32(testBase+4, 0x89ABCDEF)
	if b, _ := s.ReadU8(testBase); b != 7 {
		t.Fatal("u8")
	}
	if v, _ := s.ReadU16(testBase + 2); v != 0x1234 {
		t.Fatal("u16")
	}
	if v, _ := s.ReadU32(testBase + 4); v != 0x89ABCDEF {
		t.Fatal("u32")
	}
}

func TestProtectionLattice(t *testing.T) {
	if ProtNone.allows(AccessRead) || ProtNone.allows(AccessWrite) {
		t.Fatal("ProtNone allows something")
	}
	if !ProtRead.allows(AccessRead) || ProtRead.allows(AccessWrite) {
		t.Fatal("ProtRead wrong")
	}
	if !ProtWrite.allows(AccessRead) || !ProtWrite.allows(AccessWrite) {
		t.Fatal("ProtWrite wrong")
	}
}

func TestFaultOnUnmappedAndProtected(t *testing.T) {
	s := newSpace()
	var faults []struct {
		a   Addr
		acc Access
	}
	backing := make([]byte, FrameSize)
	backing[100] = 42
	s.SetHandler(func(a Addr, acc Access) error {
		faults = append(faults, struct {
			a   Addr
			acc Access
		}{a, acc})
		// Behave like the QuickStore fault handler: map and enable.
		prot := ProtRead
		if acc == AccessWrite {
			prot = ProtWrite
		}
		return s.Map(a.FrameBase(), backing, prot)
	})
	// Read of an unmapped frame faults once, then succeeds.
	v, err := s.ReadU8(testBase + 100)
	if err != nil || v != 42 {
		t.Fatalf("read after fault: %d, %v", v, err)
	}
	if len(faults) != 1 || faults[0].acc != AccessRead || faults[0].a != testBase+100 {
		t.Fatalf("faults = %+v", faults)
	}
	// A second read is fault-free.
	if _, err := s.ReadU8(testBase + 101); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 {
		t.Fatal("hot read faulted")
	}
	// A write to the read-only frame faults with AccessWrite.
	if err := s.WriteU8(testBase+5, 9); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 || faults[1].acc != AccessWrite {
		t.Fatalf("write fault missing: %+v", faults)
	}
	if s.Faults() != 2 {
		t.Fatalf("Faults() = %d", s.Faults())
	}
}

func TestFaultHandlerFailurePropagates(t *testing.T) {
	s := newSpace()
	boom := errors.New("disk on fire")
	s.SetHandler(func(Addr, Access) error { return boom })
	if _, err := s.ReadU8(testBase); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Handler that "succeeds" without fixing the protection is detected.
	s.SetHandler(func(Addr, Access) error { return nil })
	if _, err := s.ReadU8(testBase); !errors.Is(err, ErrStillFaulted) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoHandler(t *testing.T) {
	s := newSpace()
	if _, err := s.ReadU8(testBase); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecursiveFaultDetected(t *testing.T) {
	s := newSpace()
	s.SetHandler(func(a Addr, acc Access) error {
		// A buggy handler that dereferences an unmapped address.
		_, err := s.ReadU8(testBase + FrameSize)
		return err
	})
	if _, err := s.ReadU8(testBase); !errors.Is(err, ErrRecursive) {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfRangeAndCrossFrame(t *testing.T) {
	s := newSpace()
	if _, err := s.ReadU8(testBase - 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("below base not rejected")
	}
	if _, err := s.ReadU8(testBase + 64*FrameSize); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("beyond last frame not rejected")
	}
	s.Map(testBase, make([]byte, FrameSize), ProtRead)
	if _, err := s.ReadU64(testBase + FrameSize - 4); !errors.Is(err, ErrCrossesFrame) {
		t.Fatal("cross-frame access not rejected")
	}
	if err := s.Map(testBase+1, make([]byte, FrameSize), ProtRead); err == nil {
		t.Fatal("unaligned Map accepted")
	}
	if err := s.Map(testBase, make([]byte, 100), ProtRead); err == nil {
		t.Fatal("short backing accepted")
	}
}

func TestProtectAndUnmap(t *testing.T) {
	s := newSpace()
	s.Map(testBase, make([]byte, FrameSize), ProtWrite)
	s.Protect(testBase, ProtNone)
	p, _ := s.ProtOf(testBase)
	if p != ProtNone {
		t.Fatal("Protect did not take")
	}
	faulted := 0
	s.SetHandler(func(a Addr, acc Access) error {
		faulted++
		return s.Protect(a.FrameBase(), ProtRead)
	})
	if _, err := s.ReadU8(testBase); err != nil {
		t.Fatal(err)
	}
	if faulted != 1 {
		t.Fatal("reprotected frame did not fault")
	}
	// Unmap drops the backing entirely.
	s.Unmap(testBase)
	if d, _ := s.Mapped(testBase); d != nil {
		t.Fatal("Unmap left backing")
	}
}

func TestProtectAllOnlyTouchesMapped(t *testing.T) {
	s := newSpace()
	s.Map(testBase, make([]byte, FrameSize), ProtWrite)
	s.Map(testBase+2*FrameSize, make([]byte, FrameSize), ProtRead)
	s.ProtectAll(ProtNone)
	for _, a := range []Addr{testBase, testBase + 2*FrameSize} {
		if p, _ := s.ProtOf(a); p != ProtNone {
			t.Fatalf("frame %#x prot %v", a, p)
		}
	}
	// Remapping after ProtectAll restores access.
	s.Protect(testBase, ProtRead)
	if _, err := s.ReadU8(testBase); err != nil {
		t.Fatal(err)
	}
}

func TestRemapDifferentBacking(t *testing.T) {
	// Figure 1d: the same virtual frame remapped to a different buffer
	// frame after its page was replaced and reread.
	s := newSpace()
	b1 := make([]byte, FrameSize)
	b2 := make([]byte, FrameSize)
	b1[0], b2[0] = 1, 2
	s.Map(testBase, b1, ProtRead)
	if v, _ := s.ReadU8(testBase); v != 1 {
		t.Fatal("first mapping")
	}
	s.Map(testBase, b2, ProtRead)
	if v, _ := s.ReadU8(testBase); v != 2 {
		t.Fatal("remap did not switch backing")
	}
}

func TestTrapChargedToClock(t *testing.T) {
	clock := sim.NewClock(sim.DefaultCostModel())
	s := NewSpace(testBase, 4, clock)
	s.SetHandler(func(a Addr, acc Access) error {
		return s.Map(a.FrameBase(), make([]byte, FrameSize), ProtRead)
	})
	s.ReadU8(testBase)
	s.ReadU8(testBase) // hot
	if clock.Count(sim.CtrPageFaultTrap) != 1 {
		t.Fatalf("traps charged = %d", clock.Count(sim.CtrPageFaultTrap))
	}
}

// Property: for any sequence of in-frame writes, reads observe exactly the
// last value written, and access counting is exact.
func TestReadYourWritesProperty(t *testing.T) {
	f := func(offs []uint16, vals []byte) bool {
		if len(vals) < len(offs) {
			if len(vals) == 0 {
				return true
			}
			offs = offs[:len(vals)]
		}
		s := newSpace()
		s.Map(testBase, make([]byte, FrameSize), ProtWrite)
		shadow := map[int]byte{}
		for i, o := range offs {
			off := int(o) % FrameSize
			if err := s.WriteU8(testBase+Addr(off), vals[i]); err != nil {
				return false
			}
			shadow[off] = vals[i]
		}
		for off, want := range shadow {
			got, err := s.ReadU8(testBase + Addr(off))
			if err != nil || got != want {
				return false
			}
		}
		return s.Accesses() == int64(len(offs)+len(shadow))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
