// Package vmem simulates the virtual-memory hardware QuickStore is built
// on: an address space divided into 8K-byte frames, per-frame access
// protections, and a fault handler invoked on protection violations —
// the portable-Go stand-in for mmap/mprotect plus SIGSEGV delivery
// (see DESIGN.md, Substitutions).
//
// A frame can be mapped to a byte slice (in practice, a client buffer-pool
// frame), mirroring how QuickStore maps virtual frames onto ESM buffer
// frames (Figure 1 of the paper). Every persistent load or store issued by
// the application goes through a Space; when the target frame lacks the
// required permission, the registered fault handler runs — exactly where
// the MMU would trap — and the access is retried once.
//
// The Space never allocates backing memory of its own: like the paper's
// mmap file trick (Section 3.2), mapping a huge address range costs only
// bookkeeping.
package vmem

import (
	"encoding/binary"
	"errors"
	"fmt"

	"quickstore/internal/sim"
)

// FrameShift and FrameSize fix the 8K frame geometry shared with disk pages.
const (
	FrameShift = 13
	FrameSize  = 1 << FrameShift
	offMask    = FrameSize - 1
)

// Addr is a simulated virtual address.
type Addr uint64

// FrameBase returns the base address of the frame containing a.
func (a Addr) FrameBase() Addr { return a &^ offMask }

// Offset returns a's offset within its frame.
func (a Addr) Offset() int { return int(a & offMask) }

// Prot is a frame protection level. ProtWrite implies read permission,
// matching the paper's read/write/none flags.
type Prot uint8

// Protection levels.
const (
	ProtNone Prot = iota
	ProtRead
	ProtWrite
)

// String names the protection level.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "none"
	case ProtRead:
		return "read"
	case ProtWrite:
		return "write"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// Access is the kind of memory access being attempted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
)

// String names the access kind.
func (a Access) String() string {
	if a == AccessWrite {
		return "write"
	}
	return "read"
}

// allows reports whether protection p admits access a.
func (p Prot) allows(a Access) bool {
	if a == AccessWrite {
		return p == ProtWrite
	}
	return p >= ProtRead
}

// FaultHandler services a protection violation at addr. If it returns nil,
// the faulting access is retried once; a second violation is an error
// (a wild pointer — the dangling-reference behaviour of Section 4.5.2 is
// the application's problem, not the hardware's).
type FaultHandler func(addr Addr, access Access) error

// Errors reported by the space.
var (
	ErrOutOfRange   = errors.New("vmem: address outside the space")
	ErrNoHandler    = errors.New("vmem: protection violation with no fault handler")
	ErrStillFaulted = errors.New("vmem: access still forbidden after fault handling")
	ErrCrossesFrame = errors.New("vmem: access crosses a frame boundary")
	ErrRecursive    = errors.New("vmem: recursive fault")
)

type frame struct {
	prot Prot
	data []byte // nil when the frame is reserved but unmapped
}

// Space is one process's simulated persistent address region.
type Space struct {
	base     Addr
	frames   []frame
	handler  FaultHandler
	clock    *sim.Clock
	inFault  bool
	faults   int64
	accesses int64
}

// NewSpace creates a space covering maxFrames frames starting at base
// (base must be frame-aligned).
func NewSpace(base Addr, maxFrames int, clock *sim.Clock) *Space {
	if base&offMask != 0 {
		panic("vmem: unaligned base")
	}
	if clock == nil {
		clock = sim.NewClock(sim.CostModel{})
	}
	return &Space{base: base, frames: make([]frame, maxFrames), clock: clock}
}

// Base returns the first address of the space.
func (s *Space) Base() Addr { return s.base }

// MaxFrames returns the number of frames the space covers.
func (s *Space) MaxFrames() int { return len(s.frames) }

// SetHandler installs the page-fault handler.
func (s *Space) SetHandler(h FaultHandler) { s.handler = h }

// Faults returns the number of protection violations dispatched.
func (s *Space) Faults() int64 { return s.faults }

// Accesses returns the number of loads/stores issued through the space.
func (s *Space) Accesses() int64 { return s.accesses }

func (s *Space) frameIndex(a Addr) (int, error) {
	if a < s.base {
		return 0, fmt.Errorf("%w: %#x < base %#x", ErrOutOfRange, a, s.base)
	}
	i := int((a - s.base) >> FrameShift)
	if i >= len(s.frames) {
		return 0, fmt.Errorf("%w: %#x beyond %d frames", ErrOutOfRange, a, len(s.frames))
	}
	return i, nil
}

// Contains reports whether a falls inside the space.
func (s *Space) Contains(a Addr) bool {
	_, err := s.frameIndex(a)
	return err == nil
}

// Map binds the frame at frameAddr to data (one page of backing store,
// typically a buffer-pool frame) with the given protection. This is the
// simulated mmap: the same virtual frame may be remapped to different
// buffer frames over time (Figure 1's dynamic physical mapping).
func (s *Space) Map(frameAddr Addr, data []byte, prot Prot) error {
	if frameAddr&offMask != 0 {
		return fmt.Errorf("vmem: Map of unaligned address %#x", frameAddr)
	}
	if len(data) != FrameSize {
		return fmt.Errorf("vmem: Map with %d-byte backing", len(data))
	}
	i, err := s.frameIndex(frameAddr)
	if err != nil {
		return err
	}
	s.frames[i] = frame{prot: prot, data: data}
	return nil
}

// Unmap removes the frame's backing store and protection.
func (s *Space) Unmap(frameAddr Addr) error {
	i, err := s.frameIndex(frameAddr)
	if err != nil {
		return err
	}
	s.frames[i] = frame{}
	return nil
}

// Protect changes the frame's protection without touching its mapping.
func (s *Space) Protect(frameAddr Addr, prot Prot) error {
	i, err := s.frameIndex(frameAddr)
	if err != nil {
		return err
	}
	s.frames[i].prot = prot
	return nil
}

// ProtOf returns the frame's current protection.
func (s *Space) ProtOf(frameAddr Addr) (Prot, error) {
	i, err := s.frameIndex(frameAddr)
	if err != nil {
		return ProtNone, err
	}
	return s.frames[i].prot, nil
}

// Mapped returns the frame's backing slice (nil when unmapped), regardless
// of protection. The fault handler uses this; applications do not.
func (s *Space) Mapped(frameAddr Addr) ([]byte, error) {
	i, err := s.frameIndex(frameAddr)
	if err != nil {
		return nil, err
	}
	return s.frames[i].data, nil
}

// ProtectAll sets every mapped frame's protection to prot in one operation —
// the single mmap call QuickStore's simplified clock uses to reprotect the
// whole persistent address space when a sweep finds no victim (Section 3.5).
func (s *Space) ProtectAll(prot Prot) {
	for i := range s.frames {
		if s.frames[i].data != nil {
			s.frames[i].prot = prot
		}
	}
}

// resolve returns the backing bytes for an n-byte access at a, dispatching
// the fault handler when protection forbids it.
func (s *Space) resolve(a Addr, n int, acc Access) ([]byte, error) {
	off := a.Offset()
	if off+n > FrameSize {
		return nil, fmt.Errorf("%w: %#x+%d", ErrCrossesFrame, a, n)
	}
	i, err := s.frameIndex(a)
	if err != nil {
		return nil, err
	}
	s.accesses++
	f := &s.frames[i]
	if !f.prot.allows(acc) || f.data == nil {
		if s.handler == nil {
			return nil, fmt.Errorf("%w: %v at %#x", ErrNoHandler, acc, a)
		}
		if s.inFault {
			return nil, fmt.Errorf("%w: %v at %#x", ErrRecursive, acc, a)
		}
		s.faults++
		s.clock.Charge(sim.CtrPageFaultTrap, 1)
		s.inFault = true
		err := s.handler(a, acc)
		s.inFault = false
		if err != nil {
			return nil, err
		}
		f = &s.frames[i]
		if !f.prot.allows(acc) || f.data == nil {
			return nil, fmt.Errorf("%w: %v at %#x (prot %v)", ErrStillFaulted, acc, a, f.prot)
		}
	}
	return f.data[off : off+n], nil
}

// ReadU8 loads one byte.
func (s *Space) ReadU8(a Addr) (byte, error) {
	b, err := s.resolve(a, 1, AccessRead)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// ReadU16 loads a little-endian uint16.
func (s *Space) ReadU16(a Addr) (uint16, error) {
	b, err := s.resolve(a, 2, AccessRead)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

// ReadU32 loads a little-endian uint32.
func (s *Space) ReadU32(a Addr) (uint32, error) {
	b, err := s.resolve(a, 4, AccessRead)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// ReadU64 loads a little-endian uint64 (the pointer load of Figure 4).
func (s *Space) ReadU64(a Addr) (uint64, error) {
	b, err := s.resolve(a, 8, AccessRead)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ReadInto copies len(buf) bytes from a.
func (s *Space) ReadInto(a Addr, buf []byte) error {
	b, err := s.resolve(a, len(buf), AccessRead)
	if err != nil {
		return err
	}
	copy(buf, b)
	return nil
}

// WriteU8 stores one byte.
func (s *Space) WriteU8(a Addr, v byte) error {
	b, err := s.resolve(a, 1, AccessWrite)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// WriteU16 stores a little-endian uint16.
func (s *Space) WriteU16(a Addr, v uint16) error {
	b, err := s.resolve(a, 2, AccessWrite)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(b, v)
	return nil
}

// WriteU32 stores a little-endian uint32.
func (s *Space) WriteU32(a Addr, v uint32) error {
	b, err := s.resolve(a, 4, AccessWrite)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b, v)
	return nil
}

// WriteU64 stores a little-endian uint64 (a pointer store).
func (s *Space) WriteU64(a Addr, v uint64) error {
	b, err := s.resolve(a, 8, AccessWrite)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b, v)
	return nil
}

// WriteBytes copies data to a.
func (s *Space) WriteBytes(a Addr, data []byte) error {
	b, err := s.resolve(a, len(data), AccessWrite)
	if err != nil {
		return err
	}
	copy(b, data)
	return nil
}
