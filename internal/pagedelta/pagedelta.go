// Package pagedelta finds the modified byte regions between two images of
// a page and encodes them as a compact patch. The region finder is the
// SWAR diff that client-side recovery logging uses (DESIGN.md §5, the
// paper's Section 3.6 interleaved diff/logging); it lives here so both
// internal/core (log-record generation) and internal/esm (coherent
// warm-cache delta shipping, DESIGN.md §18) can share one implementation
// without an import cycle.
//
// The patch wire format is a sequence of runs:
//
//	u16 off | u16 n | n bytes of new data
//
// with offsets strictly increasing and non-overlapping. Apply validates
// every run against the page bounds and rejects truncated or overlapping
// input, so a patch from an untrusted peer can never write outside the
// page or be silently half-applied.
package pagedelta

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Region is one modified byte range of a page.
type Region struct{ Off, N int }

// Regions finds the modified regions between old and cur and merges
// neighbouring regions when encoding them separately would cost more than
// carrying the clean gap between them: a separate run pays hdr header
// bytes, a merged run pays 2*gap payload bytes (the convention of the
// log-record diff, whose records carry both old and new images of the
// gap). This is the paper's example: bytes 1 and 1024 of an object become
// two records, bytes 1, 3 and 5 become one. Bytes past the shorter buffer
// (page growth) form one final region.
func Regions(old, cur []byte, hdr int) []Region {
	n := len(cur)
	if len(old) < n {
		n = len(old)
	}
	var regs []Region
	i := 0
	for i < n {
		i = skipEqual(old, cur, i, n)
		if i >= n {
			break
		}
		j := skipDiff(old, cur, i+1, n)
		if len(regs) > 0 {
			last := &regs[len(regs)-1]
			gap := i - (last.Off + last.N)
			if 2*gap <= hdr {
				last.N = j - last.Off
				i = j
				continue
			}
		}
		regs = append(regs, Region{Off: i, N: j - i})
		i = j
	}
	if len(cur) > len(old) {
		regs = append(regs, Region{Off: len(old), N: len(cur) - len(old)})
	}
	return regs
}

// swarOnes has the low bit of every byte lane set; swarHighs the high bit.
// They drive the classic "does this word contain a zero byte" test:
// (v - swarOnes) & ^v & swarHighs is nonzero iff some byte of v is zero,
// and its lowest set bit sits in the word's first zero byte.
const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// skipEqual advances i past bytes where old and cur agree, eight at a time:
// the XOR of two equal words is zero, and when a word finally differs the
// first mismatching byte is the XOR's lowest nonzero byte.
func skipEqual(old, cur []byte, i, n int) int {
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(old[i:]) ^ binary.LittleEndian.Uint64(cur[i:])
		if x != 0 {
			return i + bits.TrailingZeros64(x)>>3
		}
	}
	for i < n && old[i] == cur[i] {
		i++
	}
	return i
}

// skipDiff advances j past bytes where old and cur differ, eight at a time:
// a word extends the run iff its XOR has no zero byte, and when a run ends
// the first agreeing byte is the XOR's first zero byte.
func skipDiff(old, cur []byte, j, n int) int {
	for ; j+8 <= n; j += 8 {
		x := binary.LittleEndian.Uint64(old[j:]) ^ binary.LittleEndian.Uint64(cur[j:])
		if zeros := (x - swarOnes) & ^x & swarHighs; zeros != 0 {
			return j + bits.TrailingZeros64(zeros)>>3
		}
	}
	for j < n && old[j] != cur[j] {
		j++
	}
	return j
}

// runHdr is the per-run wire overhead: u16 offset + u16 length. For the
// region merge rule a patch run carries only the new image, so merging two
// runs separated by gap bytes trades runHdr header bytes for gap payload
// bytes; passing 2*runHdr as hdr to Regions makes the 2*gap rule merge
// exactly when gap <= runHdr.
const runHdr = 4

// maxRun caps a single run's length at what its u16 field can carry.
const maxRun = 1<<16 - 1

// Encode builds a patch transforming old into cur. Both images must be the
// same length (pages are fixed-size); Encode returns nil when the patch
// would not be smaller than shipping cur outright, so a nil result means
// "send the full page".
func Encode(old, cur []byte) []byte {
	if len(old) != len(cur) {
		return nil
	}
	regs := Regions(old, cur, 2*runHdr)
	size := 0
	for _, r := range regs {
		size += runHdr*(1+(r.N-1)/maxRun) + r.N
	}
	if size == 0 || size >= len(cur) {
		return nil
	}
	out := make([]byte, 0, size)
	for _, r := range regs {
		for off, n := r.Off, r.N; n > 0; {
			run := n
			if run > maxRun {
				run = maxRun
			}
			out = binary.LittleEndian.AppendUint16(out, uint16(off))
			out = binary.LittleEndian.AppendUint16(out, uint16(run))
			out = append(out, cur[off:off+run]...)
			off += run
			n -= run
		}
	}
	return out
}

// Apply patches page in place. Runs must be non-empty, strictly ordered,
// non-overlapping, and in bounds; any violation (including a truncated
// final run) returns an error before ANY byte of the page is modified, so
// a rejected patch leaves the cached image intact.
func Apply(page, patch []byte) error {
	if err := validate(len(page), patch); err != nil {
		return err
	}
	for p := 0; p < len(patch); {
		off := int(binary.LittleEndian.Uint16(patch[p:]))
		n := int(binary.LittleEndian.Uint16(patch[p+2:]))
		copy(page[off:off+n], patch[p+runHdr:p+runHdr+n])
		p += runHdr + n
	}
	return nil
}

// validate walks the patch without writing, enforcing the format's
// invariants against pageLen.
func validate(pageLen int, patch []byte) error {
	p, prevEnd := 0, 0
	for p < len(patch) {
		if len(patch)-p < runHdr {
			return fmt.Errorf("pagedelta: truncated run header at %d (%d bytes left)", p, len(patch)-p)
		}
		off := int(binary.LittleEndian.Uint16(patch[p:]))
		n := int(binary.LittleEndian.Uint16(patch[p+2:]))
		if n == 0 {
			return fmt.Errorf("pagedelta: empty run at %d", p)
		}
		if off < prevEnd {
			return fmt.Errorf("pagedelta: run at %d overlaps or reorders (off %d < prev end %d)", p, off, prevEnd)
		}
		if off+n > pageLen {
			return fmt.Errorf("pagedelta: run at %d out of bounds (off %d + n %d > page %d)", p, off, n, pageLen)
		}
		if len(patch)-p-runHdr < n {
			return fmt.Errorf("pagedelta: truncated run payload at %d (want %d, have %d)", p, n, len(patch)-p-runHdr)
		}
		prevEnd = off + n
		p += runHdr + n
	}
	return nil
}
