package pagedelta

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// Property: Apply(old, Encode(old, cur)) == cur for random mutations, and
// a non-nil patch is strictly smaller than the page.
func TestEncodeApplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		size := []int{64, 512, 8192}[trial%3]
		old := make([]byte, size)
		rng.Read(old)
		cur := append([]byte(nil), old...)
		muts := rng.Intn(20)
		for m := 0; m < muts; m++ {
			off := rng.Intn(size)
			n := 1 + rng.Intn(64)
			if off+n > size {
				n = size - off
			}
			for i := 0; i < n; i++ {
				cur[off+i] = byte(rng.Int())
			}
		}
		patch := Encode(old, cur)
		if patch == nil {
			if bytes.Equal(old, cur) {
				continue // no change: full ship of identical bytes is fine
			}
			// nil means "ship full page" — only legal when the patch
			// would not have been smaller; verify by re-deriving regions.
			total := 0
			for _, r := range Regions(old, cur, 2*runHdr) {
				total += runHdr + r.N
			}
			if total < size {
				t.Fatalf("trial %d: Encode returned nil but patch of %d bytes beats page of %d", trial, total, size)
			}
			continue
		}
		if len(patch) >= size {
			t.Fatalf("trial %d: patch (%d bytes) not smaller than page (%d)", trial, len(patch), size)
		}
		got := append([]byte(nil), old...)
		if err := Apply(got, patch); err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("trial %d: Apply(old, Encode(old, cur)) != cur", trial)
		}
	}
}

func TestEncodeIdentical(t *testing.T) {
	page := make([]byte, 8192)
	for i := range page {
		page[i] = byte(i)
	}
	if patch := Encode(page, page); patch != nil {
		t.Fatalf("identical pages produced patch of %d bytes", len(patch))
	}
}

func TestEncodeLengthMismatch(t *testing.T) {
	if Encode(make([]byte, 10), make([]byte, 20)) != nil {
		t.Fatal("length mismatch must force full ship")
	}
}

func TestEncodeWholePageChanged(t *testing.T) {
	old := make([]byte, 8192)
	cur := make([]byte, 8192)
	for i := range cur {
		cur[i] = 0xFF
	}
	if patch := Encode(old, cur); patch != nil {
		t.Fatalf("whole-page change must force full ship, got %d-byte patch", len(patch))
	}
}

// Apply must reject malformed patches without touching the page.
func TestApplyRejectsMalformed(t *testing.T) {
	mk := func(runs ...[3]interface{}) []byte { // off, n, payloadLen
		var out []byte
		for _, r := range runs {
			out = binary.LittleEndian.AppendUint16(out, uint16(r[0].(int)))
			out = binary.LittleEndian.AppendUint16(out, uint16(r[1].(int)))
			out = append(out, make([]byte, r[2].(int))...)
		}
		return out
	}
	cases := []struct {
		name  string
		patch []byte
	}{
		{"truncated header", []byte{1, 0, 4}},
		{"empty run", mk([3]interface{}{0, 0, 0})},
		{"out of bounds", mk([3]interface{}{60, 10, 10})},
		{"truncated payload", mk([3]interface{}{0, 10, 5})},
		{"overlap", mk([3]interface{}{0, 8, 8}, [3]interface{}{4, 4, 4})},
		{"reorder", mk([3]interface{}{32, 4, 4}, [3]interface{}{0, 4, 4})},
	}
	for _, tc := range cases {
		page := make([]byte, 64)
		for i := range page {
			page[i] = byte(i)
		}
		want := append([]byte(nil), page...)
		if err := Apply(page, tc.patch); err == nil {
			t.Errorf("%s: Apply accepted malformed patch", tc.name)
		}
		if !bytes.Equal(page, want) {
			t.Errorf("%s: rejected patch modified the page", tc.name)
		}
	}
}

// Truncating a valid patch at every possible point must either fail or
// (at exact run boundaries) apply a prefix of the runs — never corrupt
// out-of-run bytes.
func TestApplyTruncations(t *testing.T) {
	old := make([]byte, 256)
	cur := append([]byte(nil), old...)
	for _, off := range []int{3, 70, 200} {
		for i := 0; i < 9; i++ {
			cur[off+i] = 0xAB
		}
	}
	patch := Encode(old, cur)
	if patch == nil {
		t.Fatal("expected a patch")
	}
	for cut := 0; cut < len(patch); cut++ {
		page := append([]byte(nil), old...)
		err := Apply(page, patch[:cut])
		boundary := isRunBoundary(patch, cut)
		if boundary && err != nil {
			t.Fatalf("cut %d at run boundary rejected: %v", cut, err)
		}
		if !boundary && err == nil {
			t.Fatalf("cut %d mid-run accepted", cut)
		}
		if err != nil && !bytes.Equal(page, old) {
			t.Fatalf("cut %d: failed Apply modified the page", cut)
		}
	}
}

func isRunBoundary(patch []byte, cut int) bool {
	p := 0
	for p < cut {
		n := int(binary.LittleEndian.Uint16(patch[p+2:]))
		p += runHdr + n
	}
	return p == cut
}

// FuzzApply feeds arbitrary patches to Apply; it must never panic and a
// successful Apply must consume a well-formed patch.
func FuzzApply(f *testing.F) {
	f.Add([]byte{}, 64)
	f.Add([]byte{0, 0, 4, 0, 1, 2, 3, 4}, 64)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 8192)
	f.Fuzz(func(t *testing.T, patch []byte, pageLen int) {
		if pageLen < 0 || pageLen > 1<<16 {
			t.Skip()
		}
		page := make([]byte, pageLen)
		before := append([]byte(nil), page...)
		if err := Apply(page, patch); err != nil {
			if !bytes.Equal(page, before) {
				t.Fatal("failed Apply modified the page")
			}
		}
	})
}

// Fuzz the encoder end-to-end: any pair of equal-length images must
// round-trip through Encode/Apply.
func FuzzEncodeApply(f *testing.F) {
	f.Add([]byte("hello world"), []byte("hello gopher"))
	f.Fuzz(func(t *testing.T, old, cur []byte) {
		if len(old) != len(cur) {
			old = old[:min(len(old), len(cur))]
			cur = cur[:len(old)]
		}
		patch := Encode(old, cur)
		if patch == nil {
			return
		}
		got := append([]byte(nil), old...)
		if err := Apply(got, patch); err != nil {
			t.Fatalf("Apply of own Encode failed: %v", err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatal("round trip mismatch")
		}
	})
}
