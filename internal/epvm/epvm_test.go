package epvm

import (
	"bytes"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

type env struct {
	t     *testing.T
	srv   *esm.Server
	clock *sim.Clock
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{BufferPages: 512, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return &env{t: t, srv: srv, clock: clock}
}

func (e *env) session(bufPages int, cfg Config, create bool) *Store {
	e.t.Helper()
	c := esm.NewClient(esm.NewInProcTransport(e.srv), esm.ClientConfig{BufferPages: bufPages, Clock: e.clock})
	var s *Store
	var err error
	if create {
		s, err = New(c, cfg)
	} else {
		s, err = Open(c, cfg)
	}
	if err != nil {
		e.t.Fatal(err)
	}
	return s
}

func (e *env) cold() {
	if err := e.srv.DropCaches(); err != nil {
		e.t.Fatal(err)
	}
}

// E object layout used in these tests: next Ref at 0 (16 bytes), val i32
// at 16; size 24.
const (
	offNext = 0
	offVal  = 16
	nodeLen = 24
)

func buildList(t *testing.T, s *Store, n int, spread bool) {
	t.Helper()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	cl := s.NewCluster()
	refs := make([]Ref, n)
	for i := 0; i < n; i++ {
		if spread {
			cl.Break()
		}
		r, err := s.Alloc(cl, nodeLen)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	for i := 0; i < n; i++ {
		next := NilRef
		if i+1 < n {
			next = refs[i+1]
		}
		if err := s.SetRef(refs[i], offNext, next); err != nil {
			t.Fatal(err)
		}
		if err := s.SetI32(refs[i], offVal, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetRoot("list", refs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func walkList(t *testing.T, s *Store) []int32 {
	t.Helper()
	r, err := s.Root("list")
	if err != nil {
		t.Fatal(err)
	}
	var vals []int32
	for r != NilRef {
		v, err := s.GetI32(r, offVal)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
		r, err = s.GetRef(r, offNext)
		if err != nil {
			t.Fatal(err)
		}
	}
	return vals
}

func TestBuildAndTraverse(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 40, false)
	s.Begin()
	vals := walkList(t, s)
	s.Commit()
	if len(vals) != 40 {
		t.Fatalf("walked %d", len(vals))
	}
	for i, v := range vals {
		if v != int32(i) {
			t.Fatalf("node %d = %d", i, v)
		}
	}
}

func TestColdTraversalInterpCosts(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 30, true)
	e.cold()

	s2 := e.session(64, Config{}, false)
	base := e.clock.Snapshot()
	s2.Begin()
	vals := walkList(t, s2)
	s2.Commit()
	if len(vals) != 30 {
		t.Fatalf("walked %d", len(vals))
	}
	d := e.clock.Snapshot().Sub(base)
	// One GetRef interpreter call per edge, plus fetch-driven calls.
	if n := d.Count(sim.CtrInterpCall); n < 30 {
		t.Errorf("interpreter calls = %d", n)
	}
	if n := d.Count(sim.CtrBigPtrDeref); n != 30 {
		t.Errorf("big-pointer derefs = %d, want 30", n)
	}
	if n := d.Count(sim.CtrClientRead); n != 30 {
		t.Errorf("client reads = %d, want 30 (one per page)", n)
	}
	// E never traps or swizzles persistent pointers.
	if d.Count(sim.CtrPageFaultTrap) != 0 || d.Count(sim.CtrSwizzledPtr) != 0 {
		t.Error("E charged virtual-memory costs")
	}

	// Hot rerun: residency checks instead of fetches.
	base = e.clock.Snapshot()
	s2.Begin()
	walkList(t, s2)
	s2.Commit()
	d = e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrClientRead); n != 0 {
		t.Errorf("hot reads = %d", n)
	}
	if n := d.Count(sim.CtrResidencyCheck); n == 0 {
		t.Error("no residency checks on hot traversal")
	}
}

func TestUpdateLogsWholeSmallObject(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 5, false)
	e.cold()

	s2 := e.session(64, Config{}, false)
	s2.Begin()
	r, _ := s2.Root("list")
	base := e.clock.Snapshot()
	if err := s2.SetI32(r, offVal, 777); err != nil {
		t.Fatal(err)
	}
	if err := s2.SetI32(r, offVal, 778); err != nil { // second update: no new copy
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrSideBufferCopy); n != 1 {
		t.Errorf("side copies = %d, want 1", n)
	}
	if n := d.Count(sim.CtrLockUpgrade); n != 1 {
		t.Errorf("lock upgrades = %d", n)
	}
	// Whole object logged: 24 bytes old + 24 new, no diffing.
	if n := d.Count(sim.CtrLogByte); n != 2*nodeLen {
		t.Errorf("log bytes = %d, want %d", n, 2*nodeLen)
	}
	if n := d.Count(sim.CtrPageDiff); n != 0 {
		t.Error("E diffed a page")
	}
	e.cold()
	s3 := e.session(64, Config{}, false)
	s3.Begin()
	vals := walkList(t, s3)
	s3.Commit()
	if vals[0] != 778 {
		t.Fatalf("update lost: %d", vals[0])
	}
}

func TestChunkedLoggingForBigObjects(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{}, true)
	s.Begin()
	cl := s.NewCluster()
	r, err := s.Alloc(cl, 4000) // nearly 4 chunks
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoot("big", r); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Begin()
	base := e.clock.Snapshot()
	// Touch one byte in chunk 0 and one in chunk 3.
	s.SetBytes(r, 10, []byte{1})
	s.SetBytes(r, 3500, []byte{2})
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.clock.Snapshot().Sub(base)
	// Two 1K chunks logged (old+new): ~2*(1024+1024) bytes, not 8000.
	got := d.Count(sim.CtrLogByte)
	if got < 2*2*900 || got > 2*2*1100 {
		t.Errorf("log bytes = %d, want about %d", got, 2*2*1024)
	}
}

func TestSideBufferOverflowStillCommits(t *testing.T) {
	e := newEnv(t)
	s := e.session(128, Config{BulkLoad: true}, true)
	buildList(t, s, 40, true)
	e.cold()

	s2 := e.session(128, Config{SideBufferBytes: 4 * nodeLen}, false)
	s2.Begin()
	r, _ := s2.Root("list")
	i := int32(0)
	for r != NilRef {
		if err := s2.SetI32(r, offVal, i+500); err != nil {
			t.Fatal(err)
		}
		i++
		var err error
		r, err = s2.GetRef(r, offNext)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	e.cold()
	s3 := e.session(128, Config{}, false)
	s3.Begin()
	vals := walkList(t, s3)
	s3.Commit()
	for i, v := range vals {
		if v != int32(i+500) {
			t.Fatalf("node %d = %d", i, v)
		}
	}
}

func TestLargeObjectPerByteInterp(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	s.Begin()
	cl := s.NewCluster()
	const size = 2*disk.PageSize + 100
	r, err := s.AllocLarge(cl, size)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), size)
	payload[0], payload[size-1] = 'A', 'Z'
	if err := s.WriteLarge(r, payload, 0); err != nil {
		t.Fatal(err)
	}
	s.SetRoot("manual", r)
	s.Commit()

	s.Begin()
	base := e.clock.Snapshot()
	first, err := s.ReadLargeByte(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	last, err := s.ReadLargeByte(r, size-1)
	if err != nil {
		t.Fatal(err)
	}
	s.Commit()
	if first != 'A' || last != 'Z' {
		t.Fatalf("bytes %c %c", first, last)
	}
	d := e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrInterpCall); n != 2 {
		t.Errorf("interp calls = %d, want 2 (one per character)", n)
	}
	if sz, _ := s.LargeSize(r); sz != size {
		t.Errorf("LargeSize = %d", sz)
	}
	if _, err := s.ReadLargeByte(r, size); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestAbortDiscardsUpdates(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 5, false)
	e.cold()

	s2 := e.session(64, Config{}, false)
	s2.Begin()
	r, _ := s2.Root("list")
	s2.SetI32(r, offVal, 9999)
	if err := s2.Abort(); err != nil {
		t.Fatal(err)
	}
	s2.Begin()
	vals := walkList(t, s2)
	s2.Commit()
	if vals[0] != 0 {
		t.Fatalf("aborted update visible: %d", vals[0])
	}
}

func TestEvictionInvalidatesSwizzledPointers(t *testing.T) {
	// With a tiny pool, swizzled handles go stale; the residency check
	// must catch it and refetch transparently.
	e := newEnv(t)
	s := e.session(128, Config{BulkLoad: true}, true)
	buildList(t, s, 50, true)
	e.cold()

	s2 := e.session(4, Config{}, false)
	s2.Begin()
	vals := walkList(t, s2)
	// Second walk in the same tx: everything was evicted behind us.
	vals = walkList(t, s2)
	s2.Commit()
	if len(vals) != 50 {
		t.Fatalf("walked %d", len(vals))
	}
	for i, v := range vals {
		if v != int32(i) {
			t.Fatalf("node %d = %d after evictions", i, v)
		}
	}
}

func TestNilRefHandling(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{}, true)
	s.Begin()
	cl := s.NewCluster()
	r, _ := s.Alloc(cl, 32)
	// A zero OID field reads back as NilRef.
	next, err := s.GetRef(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != NilRef {
		t.Fatalf("zero field gave ref %d", next)
	}
	if _, err := s.GetI32(NilRef, 0); err == nil {
		t.Fatal("nil deref succeeded")
	}
	// SetRef(nil) round-trips.
	if err := s.SetRef(r, 0, NilRef); err != nil {
		t.Fatal(err)
	}
	s.Commit()
}

func TestOIDRefInterning(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{}, true)
	s.Begin()
	cl := s.NewCluster()
	r, _ := s.Alloc(cl, 32)
	oid, err := s.OIDOf(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RefFor(oid); got != r {
		t.Fatalf("RefFor returned %d, want %d", got, r)
	}
	if s.RefFor(esm.NilOID) != NilRef {
		t.Fatal("RefFor(nil) != NilRef")
	}
	s.Commit()
}

func TestI64AndBytesFields(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{}, true)
	s.Begin()
	cl := s.NewCluster()
	r, err := s.Alloc(cl, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetI64(r, 0, -1234567890123); err != nil {
		t.Fatal(err)
	}
	v, err := s.GetI64(r, 0)
	if err != nil || v != -1234567890123 {
		t.Fatalf("GetI64 = %d, %v", v, err)
	}
	if err := s.SetBytes(r, 8, []byte("byte field")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if err := s.GetBytes(r, 8, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "byte field" {
		t.Fatalf("GetBytes = %q", buf)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRootErrors(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{}, true)
	s.Begin()
	if _, err := s.Root("missing"); err == nil {
		t.Fatal("missing root resolved")
	}
	// Setting a nil root clears it; resolving it yields NilRef.
	if err := s.SetRoot("cleared", NilRef); err != nil {
		t.Fatal(err)
	}
	r, err := s.Root("cleared")
	if err != nil || r != NilRef {
		t.Fatalf("cleared root = %d, %v", r, err)
	}
	s.Commit()
}

func TestWriteLargeOffsets(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	s.Begin()
	cl := s.NewCluster()
	const size = disk.PageSize + 500
	r, err := s.AllocLarge(cl, size)
	if err != nil {
		t.Fatal(err)
	}
	// Write across the page boundary at an offset.
	if err := s.WriteLarge(r, []byte("boundary"), disk.PageSize-4); err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte("boundary") {
		got, err := s.ReadLargeByte(r, uint64(disk.PageSize-4+i))
		if err != nil || got != want {
			t.Fatalf("byte %d = %q (%v)", i, got, err)
		}
	}
	// Out-of-bounds write rejected.
	if err := s.WriteLarge(r, []byte("xx"), size-1); err == nil {
		t.Fatal("write past end succeeded")
	}
	s.Commit()
}

func TestBeginCommitStates(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{}, true)
	if err := s.Commit(); err == nil {
		t.Fatal("commit without begin")
	}
	if err := s.Abort(); err == nil {
		t.Fatal("abort without begin")
	}
	s.Begin()
	if err := s.Begin(); err == nil {
		t.Fatal("nested begin")
	}
	cl := s.NewCluster()
	if _, err := s.Alloc(cl, 16); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Alloc outside a transaction fails.
	if _, err := s.Alloc(cl, 16); err == nil {
		t.Fatal("alloc outside tx")
	}
}
