// Package epvm implements the paper's software baseline: the E language's
// interpreter, EPVM 3.0 (Section 4.5.1). Persistent pointers are stored
// inside objects as full 16-byte OIDs; dereferencing an unswizzled pointer
// is an interpreter call that checks residency against a hash table of
// in-memory pages, calls the storage manager if the page is absent, and
// returns a swizzled pointer aimed directly at the object in the client
// buffer pool. Pointers *within* persistent objects are never swizzled
// (that would make page replacement difficult); only transient, local
// references are.
//
// Updates always go through the interpreter: the first update of an object
// copies its original value into a side buffer, updates happen in place in
// the buffer pool, and log records are generated at commit (or earlier if
// the side buffer fills) — whole objects when smaller than 1K, else 1K
// chunks. No diffing is performed.
package epvm

import (
	"errors"
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/lock"
	"quickstore/internal/sim"
)

// Ref is a swizzled local reference: an index into the session's handle
// table. 0 is the nil reference.
type Ref uint64

// NilRef is the null reference.
const NilRef Ref = 0

// ChunkSize is EPVM 3.0's logging granularity for large objects.
const ChunkSize = 1024

// DefaultSideBufferBytes matches QuickStore's recovery area for a fair
// comparison.
const DefaultSideBufferBytes = 4 << 20

// ErrNilRef is returned for operations on the nil reference.
var ErrNilRef = errors.New("epvm: nil reference")

// handle is one swizzled pointer: the object's OID plus a cached direct
// location in the buffer pool, revalidated by an epoch check (the inline
// residency check of the E compiler's generated code).
type handle struct {
	oid    esm.OID
	frame  int
	epoch  uint64
	objOff int
	objLen int
	large  bool
	info   esm.LargeInfo
	hasInf bool
}

// sideEntry holds an updated object's original value and which 1K chunks
// have been touched.
type sideEntry struct {
	oid     esm.OID
	pageOff int
	orig    []byte
	dirty   []bool
}

// Config tunes an EPVM session.
type Config struct {
	// BulkLoad disables side-buffer copying and logging (generator mode).
	BulkLoad bool
	// SideBufferBytes bounds the side buffer (default 4MB).
	SideBufferBytes int
}

// Store is one E application session. Like the paper's client process it is
// single-threaded.
type Store struct {
	c     *esm.Client
	clock *sim.Clock
	cfg   Config

	handles []handle
	byOID   map[esm.OID]Ref
	epochs  map[disk.PageID]uint64

	side      map[esm.OID]*sideEntry
	sideBytes int
	pageX     map[disk.PageID]bool

	dataFile uint32
	inTx     bool
}

// dataFileName is the single object file an E database occupies.
const dataFileName = "e.data"

// New creates a fresh E database through client c.
func New(c *esm.Client, cfg Config) (*Store, error) {
	s := newStore(c, cfg)
	id, err := c.CreateFile(dataFileName)
	if err != nil {
		return nil, err
	}
	s.dataFile = id
	return s, nil
}

// Open attaches to an existing E database.
func Open(c *esm.Client, cfg Config) (*Store, error) {
	s := newStore(c, cfg)
	id, err := c.OpenFile(dataFileName)
	if err != nil {
		return nil, err
	}
	s.dataFile = id
	return s, nil
}

func newStore(c *esm.Client, cfg Config) *Store {
	if cfg.SideBufferBytes == 0 {
		cfg.SideBufferBytes = DefaultSideBufferBytes
	}
	s := &Store{
		c:      c,
		clock:  c.Clock(),
		cfg:    cfg,
		byOID:  map[esm.OID]Ref{},
		epochs: map[disk.PageID]uint64{},
		side:   map[esm.OID]*sideEntry{},
		pageX:  map[disk.PageID]bool{},
	}
	c.Pool().OnEvict = func(pid disk.PageID, frame int) { s.epochs[pid]++ }
	c.BeforeSteal = s.beforeSteal
	return s
}

// Client returns the underlying ESM session.
func (s *Store) Client() *esm.Client { return s.c }

// Clock returns the session's cost-model clock.
func (s *Store) Clock() *sim.Clock { return s.clock }

// Begin starts a transaction.
func (s *Store) Begin() error {
	if s.inTx {
		return fmt.Errorf("epvm: transaction already active")
	}
	if err := s.c.Begin(); err != nil {
		return err
	}
	s.inTx = true
	return nil
}

// Commit generates log records from the side buffer, then runs the ESM
// commit (log force plus dirty-page shipping).
func (s *Store) Commit() error {
	if !s.inTx {
		return esm.ErrNoTx
	}
	if err := s.flushSide(); err != nil {
		return err
	}
	if err := s.c.Commit(); err != nil {
		return err
	}
	s.endTx()
	return nil
}

// Abort discards the transaction.
func (s *Store) Abort() error {
	if !s.inTx {
		return esm.ErrNoTx
	}
	s.side = map[esm.OID]*sideEntry{}
	s.sideBytes = 0
	if err := s.c.Abort(); err != nil {
		return err
	}
	s.endTx()
	return nil
}

func (s *Store) endTx() {
	s.side = map[esm.OID]*sideEntry{}
	s.sideBytes = 0
	s.pageX = map[disk.PageID]bool{}
	s.inTx = false
}

// --- Swizzling and residency ------------------------------------------------

// newHandle interns a swizzled reference for oid.
func (s *Store) newHandle(oid esm.OID) Ref {
	if r, ok := s.byOID[oid]; ok {
		return r
	}
	s.handles = append(s.handles, handle{oid: oid, frame: -1, large: oid.IsLarge()})
	r := Ref(len(s.handles))
	s.byOID[oid] = r
	return r
}

func (s *Store) handleOf(r Ref) (*handle, error) {
	if r == NilRef || int(r) > len(s.handles) {
		return nil, fmt.Errorf("%w: %d", ErrNilRef, r)
	}
	return &s.handles[r-1], nil
}

// OIDOf returns the OID behind a reference (index integration).
func (s *Store) OIDOf(r Ref) (esm.OID, error) {
	h, err := s.handleOf(r)
	if err != nil {
		return esm.NilOID, err
	}
	return h.oid, nil
}

// RefFor interns a reference for a known OID (index integration).
func (s *Store) RefFor(oid esm.OID) Ref {
	if oid.IsNil() {
		return NilRef
	}
	return s.newHandle(oid)
}

// object returns the in-pool bytes of the object behind h. The fast path is
// the inline residency check; the slow path is an interpreter call that
// refetches through the storage manager.
func (s *Store) object(h *handle) ([]byte, error) {
	if h.large {
		return nil, fmt.Errorf("epvm: scalar access to large object %v", h.oid)
	}
	if h.frame >= 0 && h.epoch == s.epochs[h.oid.Page] {
		if f := s.c.Pool().Frame(h.frame); f.Page == h.oid.Page {
			s.clock.Charge(sim.CtrResidencyCheck, 1)
			return f.Data[h.objOff : h.objOff+h.objLen : h.objOff+h.objLen], nil
		}
	}
	s.clock.Charge(sim.CtrInterpCall, 1)
	data, pageOff, frame, err := s.c.ReadObjectAt(h.oid)
	if err != nil {
		return nil, err
	}
	h.frame = frame
	h.epoch = s.epochs[h.oid.Page]
	h.objOff = pageOff
	h.objLen = len(data)
	return data, nil
}

// --- Field access -----------------------------------------------------------

// GetI32 reads a 4-byte integer field.
func (s *Store) GetI32(r Ref, off int) (int32, error) {
	h, err := s.handleOf(r)
	if err != nil {
		return 0, err
	}
	obj, err := s.object(h)
	if err != nil {
		return 0, err
	}
	s.clock.Charge(sim.CtrFieldRead, 1)
	return int32(leU32(obj[off:])), nil
}

// GetI64 reads an 8-byte integer field.
func (s *Store) GetI64(r Ref, off int) (int64, error) {
	h, err := s.handleOf(r)
	if err != nil {
		return 0, err
	}
	obj, err := s.object(h)
	if err != nil {
		return 0, err
	}
	s.clock.Charge(sim.CtrFieldRead, 1)
	return int64(leU64(obj[off:])), nil
}

// GetBytes copies a byte-array field into buf.
func (s *Store) GetBytes(r Ref, off int, buf []byte) error {
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	obj, err := s.object(h)
	if err != nil {
		return err
	}
	s.clock.Charge(sim.CtrFieldRead, 1)
	copy(buf, obj[off:])
	return nil
}

// GetRef dereferences a pointer field: an interpreter call that reads the
// embedded 16-byte OID and returns a swizzled reference to the target,
// faulting the target's page in if needed (a swizzled E pointer aims
// directly at the object in the buffer pool).
func (s *Store) GetRef(r Ref, off int) (Ref, error) {
	h, err := s.handleOf(r)
	if err != nil {
		return NilRef, err
	}
	obj, err := s.object(h)
	if err != nil {
		return NilRef, err
	}
	s.clock.Charge(sim.CtrInterpCall, 1)
	s.clock.Charge(sim.CtrBigPtrDeref, 1)
	oid := esm.UnmarshalOID(obj[off:])
	if oid.IsNil() {
		return NilRef, nil
	}
	tr := s.newHandle(oid)
	// Swizzling makes the target resident (large objects stay lazy; their
	// pages are fetched per access).
	th := &s.handles[tr-1]
	if !th.large {
		if _, err := s.object(th); err != nil {
			return NilRef, err
		}
	}
	return tr, nil
}

// --- Updates (always interpreter calls) -------------------------------------

// prepareUpdate runs the EPVM update protocol for the object behind h.
func (s *Store) prepareUpdate(h *handle) ([]byte, error) {
	obj, err := s.object(h)
	if err != nil {
		return nil, err
	}
	s.clock.Charge(sim.CtrInterpCall, 1)
	if !s.cfg.BulkLoad {
		if err := s.ensureSideCopy(h, obj); err != nil {
			return nil, err
		}
		if !s.pageX[h.oid.Page] {
			if err := s.c.Lock(lock.KindPage, uint32(h.oid.Page), lock.Exclusive); err != nil {
				return nil, err
			}
			s.clock.Charge(sim.CtrLockUpgrade, 1)
			s.pageX[h.oid.Page] = true
		}
	}
	if err := s.c.MarkDirty(h.oid.Page); err != nil {
		return nil, err
	}
	return obj, nil
}

func chunksOf(n int) int { return (n + ChunkSize - 1) / ChunkSize }

func (s *Store) ensureSideCopy(h *handle, obj []byte) error {
	if _, ok := s.side[h.oid]; ok {
		return nil
	}
	if s.sideBytes+len(obj) > s.cfg.SideBufferBytes {
		if err := s.flushSide(); err != nil {
			return err
		}
	}
	s.side[h.oid] = &sideEntry{
		oid:     h.oid,
		pageOff: h.objOff,
		orig:    append([]byte(nil), obj...),
		dirty:   make([]bool, chunksOf(len(obj))),
	}
	s.sideBytes += len(obj)
	s.clock.Charge(sim.CtrSideBufferCopy, 1)
	return nil
}

func (s *Store) markDirtyRange(oid esm.OID, off, n int) {
	e, ok := s.side[oid]
	if !ok {
		return
	}
	for c := off / ChunkSize; c <= (off+n-1)/ChunkSize && c < len(e.dirty); c++ {
		e.dirty[c] = true
	}
}

// SetI32 updates a 4-byte integer field.
func (s *Store) SetI32(r Ref, off int, v int32) error {
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	obj, err := s.prepareUpdate(h)
	if err != nil {
		return err
	}
	putU32(obj[off:], uint32(v))
	s.markDirtyRange(h.oid, off, 4)
	s.clock.Charge(sim.CtrFieldWrite, 1)
	return nil
}

// SetI64 updates an 8-byte integer field.
func (s *Store) SetI64(r Ref, off int, v int64) error {
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	obj, err := s.prepareUpdate(h)
	if err != nil {
		return err
	}
	putU64(obj[off:], uint64(v))
	s.markDirtyRange(h.oid, off, 8)
	s.clock.Charge(sim.CtrFieldWrite, 1)
	return nil
}

// SetBytes updates a byte-array field.
func (s *Store) SetBytes(r Ref, off int, data []byte) error {
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	obj, err := s.prepareUpdate(h)
	if err != nil {
		return err
	}
	copy(obj[off:], data)
	s.markDirtyRange(h.oid, off, len(data))
	s.clock.Charge(sim.CtrFieldWrite, 1)
	return nil
}

// SetRef stores a reference into a pointer field as its unswizzled 16-byte
// OID (pointers within persistent objects are never kept swizzled).
func (s *Store) SetRef(r Ref, off int, target Ref) error {
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	obj, err := s.prepareUpdate(h)
	if err != nil {
		return err
	}
	var oid esm.OID
	if target != NilRef {
		th, err := s.handleOf(target)
		if err != nil {
			return err
		}
		oid = th.oid
	}
	oid.Marshal(obj[off:])
	s.markDirtyRange(h.oid, off, esm.OIDSize)
	s.clock.Charge(sim.CtrFieldWrite, 1)
	return nil
}

// flushSide turns side-buffer entries into log records: objects under 1K
// are logged whole; larger objects are logged in their touched 1K chunks.
func (s *Store) flushSide() error {
	for _, e := range s.side {
		cur, pageOff, _, err := s.c.ReadObjectAt(e.oid)
		if err != nil {
			return err
		}
		if pageOff != e.pageOff {
			return fmt.Errorf("epvm: object %v moved on its page", e.oid)
		}
		if len(cur) <= ChunkSize {
			s.c.LogUpdate(e.oid.Page, pageOff, e.orig, append([]byte(nil), cur...))
			continue
		}
		for ci, dirty := range e.dirty {
			if !dirty {
				continue
			}
			lo := ci * ChunkSize
			hi := lo + ChunkSize
			if hi > len(cur) {
				hi = len(cur)
			}
			s.c.LogUpdate(e.oid.Page, pageOff+lo, e.orig[lo:hi], append([]byte(nil), cur[lo:hi]...))
		}
	}
	s.side = map[esm.OID]*sideEntry{}
	s.sideBytes = 0
	return nil
}

// beforeSteal logs the side-buffer entries covering a dirty page that is
// about to be shipped mid-transaction (write-ahead logging).
func (s *Store) beforeSteal(pid disk.PageID, data []byte) error {
	if s.cfg.BulkLoad {
		return nil
	}
	for oid, e := range s.side {
		if oid.Page != pid {
			continue
		}
		cur := data[e.pageOff : e.pageOff+len(e.orig)]
		if len(cur) <= ChunkSize {
			s.c.LogUpdate(pid, e.pageOff, e.orig, append([]byte(nil), cur...))
		} else {
			for ci, dirty := range e.dirty {
				if !dirty {
					continue
				}
				lo := ci * ChunkSize
				hi := lo + ChunkSize
				if hi > len(cur) {
					hi = len(cur)
				}
				s.c.LogUpdate(pid, e.pageOff+lo, e.orig[lo:hi], append([]byte(nil), cur[lo:hi]...))
			}
		}
		s.sideBytes -= len(e.orig)
		delete(s.side, oid)
	}
	return nil
}

// --- Allocation ---------------------------------------------------------------

// Cluster is a placement cursor in the E data file.
type Cluster struct {
	cl *esm.Cluster
}

// NewCluster starts a placement cursor.
func (s *Store) NewCluster() *Cluster { return &Cluster{cl: s.c.NewCluster(s.dataFile)} }

// Break forces the next allocation onto a fresh page.
func (cl *Cluster) Break() { cl.cl.BreakCluster() }

// Alloc creates a size-byte object and returns a swizzled reference. In
// logged mode the whole object is recorded as created (its "original" is
// zero bytes), so the first commit logs its full image.
func (s *Store) Alloc(cl *Cluster, size int) (Ref, error) {
	if !s.inTx {
		return NilRef, esm.ErrNoTx
	}
	size = (size + 7) &^ 7
	oid, data, err := s.c.CreateObject(cl.cl, size)
	if err != nil {
		return NilRef, err
	}
	r := s.newHandle(oid)
	h := &s.handles[r-1]
	if _, err := s.object(h); err != nil {
		return NilRef, err
	}
	if !s.cfg.BulkLoad {
		if s.sideBytes+len(data) > s.cfg.SideBufferBytes {
			if err := s.flushSide(); err != nil {
				return NilRef, err
			}
		}
		e := &sideEntry{
			oid:     oid,
			pageOff: h.objOff,
			orig:    make([]byte, len(data)),
			dirty:   make([]bool, chunksOf(len(data))),
		}
		for i := range e.dirty {
			e.dirty[i] = true
		}
		s.side[oid] = e
		s.sideBytes += len(data)
	}
	return r, nil
}

// Delete removes the object behind r (an interpreter operation): the slot
// is marked dead after the page follows the update protocol.
func (s *Store) Delete(r Ref) error {
	if !s.inTx {
		return esm.ErrNoTx
	}
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	if h.large {
		return fmt.Errorf("epvm: Delete(%v): large objects are deleted via their owner", h.oid)
	}
	if _, err := s.prepareUpdate(h); err != nil {
		return err
	}
	if err := s.c.DeleteObject(h.oid); err != nil {
		return err
	}
	// Drop the side-buffer entry: the slot is dead, so there is nothing to
	// diff at commit; the deletion rides the whole-page ship.
	if e, ok := s.side[h.oid]; ok {
		s.sideBytes -= len(e.orig)
		delete(s.side, h.oid)
	}
	delete(s.byOID, h.oid)
	h.frame = -1
	return nil
}

// AllocLarge creates a multi-page object and returns its reference.
func (s *Store) AllocLarge(cl *Cluster, size uint64) (Ref, error) {
	if !s.inTx {
		return NilRef, esm.ErrNoTx
	}
	oid, info, err := s.c.CreateLarge(cl.cl, size, 0)
	if err != nil {
		return NilRef, err
	}
	r := s.newHandle(oid)
	h := &s.handles[r-1]
	h.info, h.hasInf = info, true
	return r, nil
}

// LargeSize returns the byte size of a large object.
func (s *Store) LargeSize(r Ref) (uint64, error) {
	h, err := s.handleOf(r)
	if err != nil {
		return 0, err
	}
	info, err := s.largeInfo(h)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

func (s *Store) largeInfo(h *handle) (esm.LargeInfo, error) {
	if !h.large {
		return esm.LargeInfo{}, fmt.Errorf("epvm: %v is not a large object", h.oid)
	}
	if h.hasInf {
		return h.info, nil
	}
	info, err := s.c.LargeInfoOf(h.oid)
	if err != nil {
		return esm.LargeInfo{}, err
	}
	h.info, h.hasInf = info, true
	return info, nil
}

// ReadLargeByte reads one character of a large object. Every call is an
// interpreter entry — the behaviour that makes E 32x slower than QuickStore
// on the hot T8 manual scan.
func (s *Store) ReadLargeByte(r Ref, off uint64) (byte, error) {
	h, err := s.handleOf(r)
	if err != nil {
		return 0, err
	}
	info, err := s.largeInfo(h)
	if err != nil {
		return 0, err
	}
	if off >= info.Size {
		return 0, fmt.Errorf("epvm: large read at %d past size %d", off, info.Size)
	}
	s.clock.Charge(sim.CtrInterpCall, 1)
	pid := info.First + disk.PageID(off/disk.PageSize)
	idx, err := s.c.FetchPage(pid)
	if err != nil {
		return 0, err
	}
	return s.c.PageData(idx)[off%disk.PageSize], nil
}

// WriteLarge bulk-writes into a large object (loader path).
func (s *Store) WriteLarge(r Ref, data []byte, off uint64) error {
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	return s.c.LargeWriteAt(h.oid, data, off)
}

// --- Roots -------------------------------------------------------------------

// SetRoot registers r under a persistent name; NilRef clears the root.
func (s *Store) SetRoot(name string, r Ref) error {
	if r == NilRef {
		return s.c.SetRoot(name, esm.NilOID, 0)
	}
	h, err := s.handleOf(r)
	if err != nil {
		return err
	}
	return s.c.SetRoot(name, h.oid, 0)
}

// Root resolves a persistent name.
func (s *Store) Root(name string) (Ref, error) {
	oid, _, err := s.c.GetRoot(name)
	if err != nil {
		return NilRef, err
	}
	if oid.IsNil() {
		return NilRef, nil
	}
	return s.newHandle(oid), nil
}

// --- Little-endian helpers ---------------------------------------------------

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
