package harness

import (
	"testing"
)

// TestShardCrashDrillMatrix runs the full kill matrix: coordinator and
// participant each killed at every 2PC crash point, with both shards
// power-failed, restarted, and swept. Zero violations means every
// cross-shard transaction resolved atomically — committed on both shards
// or neither — across every cut of the protocol.
func TestShardCrashDrillMatrix(t *testing.T) {
	reps, err := RunShardDrillMatrix(20260808, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for _, rep := range reps {
		if rep.Crashed {
			crashed++
		}
		for _, v := range rep.Violations {
			t.Errorf("victim=%s point=%s: %s", rep.Victim, rep.Point, v)
		}
		if t.Failed() && len(rep.Trace) > 0 {
			t.Logf("victim=%s point=%s trace: %v", rep.Victim, rep.Point, rep.Trace)
		}
	}
	if len(reps) != 2*len(ShardCrashPoints) {
		t.Fatalf("matrix ran %d cells, want %d", len(reps), 2*len(ShardCrashPoints))
	}
	if crashed != len(reps) {
		t.Errorf("only %d/%d armed points fired", crashed, len(reps))
	}
}

// TestShardDrillQuiescentKill power-fails both shards with no armed fault:
// everything acknowledged must survive, nothing should be in doubt.
func TestShardDrillQuiescentKill(t *testing.T) {
	rep, err := RunShardDrill(ShardDrillOpts{Seed: 7, Victim: "coord", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed in the quiescent drill")
	}
	if rep.Resolved.InDoubt != 0 {
		t.Errorf("quiescent kill left %d in-doubt transactions", rep.Resolved.InDoubt)
	}
}
