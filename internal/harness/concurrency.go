package harness

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/wal"
)

// ConcurrencyOpts tunes the multi-client wall-clock benchmark. Unlike the
// paper experiments (simulated time, deterministic), this bench measures
// real elapsed time: the point is the server's concurrency machinery —
// striped pool latches, I/O outside locks, group commit — which only shows
// up on a wall clock.
type ConcurrencyOpts struct {
	MaxClients    int // sweep 1,2,4,... up to here; 0 = 8
	TxnsPerClient int // committed transactions per client; 0 = 40
	ReadsPerTxn   int // shared-object reads per transaction; 0 = 16
	UpdateEvery   int // every n-th transaction also updates; 0 = 4
	SharedObjects int // shared read working set; 0 = 256 (~64 pages)
	ServerPool    int // server frames; 0 = 48 (smaller than the working set)
	ClientPool    int // client frames per session; 0 = 8

	// Injected device latencies. The volume and log live in memory, so
	// without these every operation is a few microseconds and the bench
	// would measure Go scheduler noise; the sleeps restore the I/O stalls
	// that concurrency is supposed to overlap.
	ReadDelay  time.Duration // per server disk page read; 0 = 120µs
	FlushDelay time.Duration // per physical log force; 0 = 240µs

	CommitWindow time.Duration // group-commit window; 0 = 1ms
	NoBigLock    bool          // skip the serialized-dispatch baseline

	// MVCC enables the server's version store so snapshot sessions work
	// against the benchmark database (used by the snapshot-read sweep;
	// the plain concurrency bench leaves it off). Unbounded retention:
	// the bench measures the read path, not eviction policy.
	MVCC bool

	// Net runs every session over TCP: all sessions of a client count share
	// ONE multiplexed connection (esm.DialTCP), pipelining their requests
	// through it, and the baseline shares ONE serial lock-step connection
	// (esm.DialTCPLockstep) where each call holds the socket for its full
	// round trip. The A/B isolates what multiplexing bought. Unless Addr is
	// set, the server runs in-process behind a loopback listener.
	Net bool

	// Addr points the bench at an external page server ("qsstore serve")
	// instead of an in-process one. Implies Net. The database is built over
	// the wire; server stats come from OpStats on the same connection.
	Addr string
}

func (o ConcurrencyOpts) withDefaults() ConcurrencyOpts {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&o.MaxClients, 8)
	def(&o.TxnsPerClient, 40)
	def(&o.ReadsPerTxn, 16)
	def(&o.UpdateEvery, 4)
	def(&o.SharedObjects, 256)
	def(&o.ServerPool, 48)
	def(&o.ClientPool, 8)
	if o.ReadDelay == 0 {
		o.ReadDelay = 120 * time.Microsecond
	}
	if o.FlushDelay == 0 {
		o.FlushDelay = 240 * time.Microsecond
	}
	if o.CommitWindow == 0 {
		o.CommitWindow = time.Millisecond
	}
	if o.Addr != "" {
		o.Net = true
	}
	return o
}

// clientCounts expands MaxClients into the sweep 1, 2, 4, ... MaxClients.
func (o ConcurrencyOpts) clientCounts() []int {
	var out []int
	for c := 1; c < o.MaxClients; c *= 2 {
		out = append(out, c)
	}
	return append(out, o.MaxClients)
}

// ConcurrencyPoint is one measured client count.
type ConcurrencyPoint struct {
	Clients          int     `json:"clients"`
	Ops              int64   `json:"ops"`
	Seconds          float64 `json:"seconds"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	Speedup          float64 `json:"speedup"`             // vs the 1-client point
	BigLockOpsPerSec float64 `json:"big_lock_ops_per_sec"` // 0 when skipped
	Commits          int64   `json:"commits"`
	LogForces        int64   `json:"log_forces"`
	LogPiggybacks    int64   `json:"log_piggybacks"`
	DiskReads        int64   `json:"disk_reads"` // pool misses that went to the device

	// Net-mode extras (zero in in-proc mode). LockstepOpsPerSec is the
	// serial lock-step TCPTransport baseline sharing one connection; the
	// remaining fields are server-side transport-stat deltas for the
	// multiplexed measurement.
	LockstepOpsPerSec float64 `json:"lockstep_ops_per_sec,omitempty"`
	NetInFlightHW     int64   `json:"net_inflight_hw,omitempty"` // peak concurrent requests in the server
	NetFlushes        int64   `json:"net_flushes,omitempty"`     // coalesced response writes (writev calls)
	NetFrames         int64   `json:"net_frames,omitempty"`      // response frames written
	NetBytesOut       int64   `json:"net_bytes_out,omitempty"`
}

// ForcesPerCommit is the group-commit win: < 1 means commits shared forces.
func (p ConcurrencyPoint) ForcesPerCommit() float64 {
	return ratio(float64(p.LogForces), float64(p.Commits))
}

// FramesPerFlush is the response-coalescing win: > 1 means the server's
// connection writer batched multiple response frames into one writev.
func (p ConcurrencyPoint) FramesPerFlush() float64 {
	return ratio(float64(p.NetFrames), float64(p.NetFlushes))
}

// BytesPerFrame is the mean response frame size on the wire.
func (p ConcurrencyPoint) BytesPerFrame() float64 {
	return ratio(float64(p.NetBytesOut), float64(p.NetFrames))
}

// readLatencyHook injects a fixed device latency into every page read.
type readLatencyHook struct{ d time.Duration }

func (h readLatencyHook) BeforeRead(id uint32) error {
	if h.d > 0 {
		time.Sleep(h.d)
	}
	return nil
}

func (h readLatencyHook) BeforeWrite(id uint32, pageSize int) (int, error) {
	return pageSize, nil
}

// serialTransport reimposes the pre-refactor big lock from the outside:
// every protocol call — including its disk reads and log forces — holds one
// shared mutex, exactly as when Server.Handle serialized on a global lock.
// Comparing against it isolates what breaking the lock bought.
type serialTransport struct {
	mu *sync.Mutex
	t  esm.Transport
}

func (s serialTransport) Call(req *esm.Request) (*esm.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Call(req)
}

func (s serialTransport) Close() error { return s.t.Close() }

// concEnv is one benchmark database: shared read-mostly objects plus one
// private update object per client slot, committed and checkpointed. In net
// mode it also owns the loopback listener (or the dialed connection to an
// external server) and the transport used for setup and stats.
type concEnv struct {
	srv     *esm.Server // nil when the server is external (Addr)
	addr    string      // dial target in net mode
	ln      net.Listener
	setup   esm.Transport
	shared  []esm.OID
	private []esm.OID
}

func (e *concEnv) close() {
	if e.setup != nil {
		e.setup.Close()
	}
	if e.ln != nil {
		e.ln.Close()
	}
}

// concEnvSeq makes database file names unique so repeated env builds against
// one long-lived external server don't collide in its catalog.
var concEnvSeq atomic.Int64

func buildConcEnv(o ConcurrencyOpts) (*concEnv, error) {
	env := &concEnv{}
	if o.Addr != "" {
		tr, err := esm.DialTCP(o.Addr)
		if err != nil {
			return nil, err
		}
		env.addr, env.setup = o.Addr, tr
	} else {
		vol := disk.WithHook(disk.NewMemVolume(), readLatencyHook{d: o.ReadDelay})
		logf := wal.NewMemLog()
		if d := o.FlushDelay; d > 0 {
			logf.FlushHook = func(pending int) (int, error) {
				time.Sleep(d)
				return pending, nil
			}
		}
		cfg := esm.ServerConfig{
			BufferPages:  o.ServerPool,
			CommitWindow: o.CommitWindow,
			MVCC:         o.MVCC,
		}
		if o.MVCC {
			cfg.MVCCMaxBytes = -1
			cfg.LockTimeout = 5 * time.Second
		}
		srv, err := esm.NewServer(vol, logf, cfg)
		if err != nil {
			return nil, err
		}
		env.srv = srv
		env.setup = esm.NewInProcTransport(srv)
		if o.Net {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go esm.Serve(ln, srv)
			env.ln, env.addr = ln, ln.Addr().String()
		}
	}
	c := esm.NewClient(env.setup, esm.ClientConfig{BufferPages: 64})
	if err := c.Begin(); err != nil {
		env.close()
		return nil, err
	}
	fid, err := c.CreateFile(fmt.Sprintf("conc%d", concEnvSeq.Add(1)))
	if err != nil {
		env.close()
		return nil, err
	}
	cl := c.NewCluster(fid)
	for i := 0; i < o.SharedObjects+o.MaxClients; i++ {
		oid, data, err := c.CreateObject(cl, payloadSize)
		if err != nil {
			env.close()
			return nil, err
		}
		putValue(data, uint64(i))
		if i < o.SharedObjects {
			env.shared = append(env.shared, oid)
		} else {
			env.private = append(env.private, oid)
		}
	}
	if err := c.Commit(); err != nil {
		env.close()
		return nil, err
	}
	if err := c.Checkpoint(); err != nil {
		env.close()
		return nil, err
	}
	return env, nil
}

// runConcClient is one benchmark session: read-mostly transactions over the
// shared working set, updating the slot's private object every n-th
// transaction. The client pool is deliberately smaller than the working set
// so reads keep faulting to the server, which is the component under test.
func runConcClient(env *concEnv, tr esm.Transport, slot int, o ConcurrencyOpts, ops *atomic.Int64) error {
	c := esm.NewClient(tr, esm.ClientConfig{BufferPages: o.ClientPool})
	rng := rand.New(rand.NewSource(int64(1000 + slot)))
	for t := 1; t <= o.TxnsPerClient; t++ {
		if err := c.Begin(); err != nil {
			return err
		}
		for r := 0; r < o.ReadsPerTxn; r++ {
			oid := env.shared[rng.Intn(len(env.shared))]
			if _, _, err := c.ReadObject(oid); err != nil {
				return err
			}
			ops.Add(1)
		}
		if o.UpdateEvery > 0 && t%o.UpdateEvery == 0 {
			oid := env.private[slot]
			data, off, frame, err := c.ReadObjectAt(oid)
			if err != nil {
				return err
			}
			old := append([]byte(nil), data[:12]...)
			putValue(data, rng.Uint64())
			c.Pool().MarkDirty(frame)
			c.LogUpdate(oid.Page, off, old, append([]byte(nil), data[:12]...))
			ops.Add(1)
		}
		if err := c.Commit(); err != nil {
			return err
		}
	}
	return nil
}

func (e *concEnv) stats() (*esm.ServerStats, error) {
	c := esm.NewClient(e.setup, esm.ClientConfig{BufferPages: 4})
	return c.ServerStats()
}

// concMode selects the transport arrangement for one measurement.
type concMode int

const (
	modeInProc   concMode = iota // one InProcTransport per session
	modeBigLock                  // in-proc, every call through one shared mutex
	modeMux                      // all sessions share ONE multiplexed TCP connection
	modeLockstep                 // all sessions share ONE serial lock-step TCP connection
)

// measureConc runs one client count against a fresh database and returns
// total ops, elapsed wall time, and the server-stat deltas.
func measureConc(o ConcurrencyOpts, clients int, mode concMode) (ConcurrencyPoint, error) {
	pt := ConcurrencyPoint{Clients: clients}
	env, err := buildConcEnv(o)
	if err != nil {
		return pt, err
	}
	defer env.close()
	before, err := env.stats()
	if err != nil {
		return pt, err
	}

	// In net modes every session shares the one connection under test.
	var shared esm.Transport
	switch mode {
	case modeMux:
		if shared, err = esm.DialTCP(env.addr); err != nil {
			return pt, err
		}
	case modeLockstep:
		if shared, err = esm.DialTCPLockstep(env.addr); err != nil {
			return pt, err
		}
	}
	if shared != nil {
		defer shared.Close()
	}

	var bigMu sync.Mutex
	var ops atomic.Int64
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for slot := 0; slot < clients; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			tr := shared
			if tr == nil {
				tr = esm.NewInProcTransport(env.srv)
				if mode == modeBigLock {
					tr = serialTransport{mu: &bigMu, t: tr}
				}
			}
			errs[slot] = runConcClient(env, tr, slot, o, &ops)
		}(slot)
	}
	wg.Wait()
	pt.Seconds = time.Since(start).Seconds()
	for slot, err := range errs {
		if err != nil {
			return pt, fmt.Errorf("client %d: %w", slot, err)
		}
	}
	after, err := env.stats()
	if err != nil {
		return pt, err
	}
	pt.Ops = ops.Load()
	pt.OpsPerSec = ratio(float64(pt.Ops), pt.Seconds)
	pt.Commits = after.Commits - before.Commits
	pt.LogForces = after.LogForces - before.LogForces
	pt.LogPiggybacks = after.LogPiggybacks - before.LogPiggybacks
	pt.DiskReads = after.PoolMisses - before.PoolMisses
	if mode == modeMux {
		pt.NetInFlightHW = after.NetInFlightHW
		pt.NetFlushes = after.NetFlushes - before.NetFlushes
		pt.NetFrames = after.NetFrames - before.NetFrames
		pt.NetBytesOut = after.NetBytesOut - before.NetBytesOut
	}
	return pt, nil
}

// RunConcurrencyBench sweeps client counts 1..MaxClients over the concurrent
// server and a serialized baseline, returning one point per client count. In
// the default in-process mode the baseline is the big-lock transport; in net
// mode (Net or Addr) the sessions of each point pipeline over ONE shared
// multiplexed TCP connection and the baseline runs them over ONE shared
// serial lock-step connection. NoBigLock skips the baseline in both modes.
func RunConcurrencyBench(opts ConcurrencyOpts) ([]ConcurrencyPoint, error) {
	o := opts.withDefaults()
	main, base := modeInProc, modeBigLock
	if o.Net {
		main, base = modeMux, modeLockstep
	}
	var pts []ConcurrencyPoint
	for _, clients := range o.clientCounts() {
		pt, err := measureConc(o, clients, main)
		if err != nil {
			return nil, err
		}
		if !o.NoBigLock {
			b, err := measureConc(o, clients, base)
			if err != nil {
				return nil, err
			}
			if o.Net {
				pt.LockstepOpsPerSec = b.OpsPerSec
			} else {
				pt.BigLockOpsPerSec = b.OpsPerSec
			}
		}
		pts = append(pts, pt)
	}
	for i := range pts {
		pts[i].Speedup = ratio(pts[i].OpsPerSec, pts[0].OpsPerSec)
	}
	return pts, nil
}

// ConcurrencyExp ("-exp concurrency", "oo7bench -clients N") runs the
// multi-client scaling bench and emits its table. It is deliberately not
// part of "-exp all": it measures wall-clock time, so its numbers vary run
// to run, while "-exp all" output stays byte-identical to the paper
// baseline.
func (s *Suite) ConcurrencyExp(opts ConcurrencyOpts) error {
	o := opts.withDefaults()
	pts, err := RunConcurrencyBench(o)
	if err != nil {
		return err
	}
	if o.Net {
		return s.emitNetTable(o, pts)
	}
	t := Table{
		Title: fmt.Sprintf("Concurrency: multi-client throughput scaling, 1-%d clients (wall clock)",
			o.MaxClients),
		Columns: []string{"clients", "ops", "sec", "ops/sec", "speedup",
			"big-lock ops/sec", "vs big-lock", "commits", "forces", "piggybacks", "forces/commit"},
	}
	for _, p := range pts {
		vsBig := "-"
		bigCol := "-"
		if p.BigLockOpsPerSec > 0 {
			bigCol = ms(p.BigLockOpsPerSec)
			vsBig = f1(ratio(p.OpsPerSec, p.BigLockOpsPerSec)) + "x"
		}
		t.AddRow(d(int64(p.Clients)), d(p.Ops), fmt.Sprintf("%.2f", p.Seconds),
			ms(p.OpsPerSec), f1(p.Speedup)+"x", bigCol, vsBig,
			d(p.Commits), d(p.LogForces), d(p.LogPiggybacks),
			fmt.Sprintf("%.2f", p.ForcesPerCommit()))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("wall-clock bench (not the simulated clock); injected device latency: %v/page read, %v/log force, %v commit window",
			o.ReadDelay, o.FlushDelay, o.CommitWindow),
		"big-lock baseline serializes every protocol call through one mutex, emulating the pre-refactor server",
		"forces/commit < 1 means group commit batched concurrent committers onto shared log forces")
	s.emit(t)
	return nil
}

// emitNetTable renders the TCP-mode sweep: pipelined shared-mux sessions
// against the serial lock-step connection, with the transport counters that
// show where the win comes from.
func (s *Suite) emitNetTable(o ConcurrencyOpts, pts []ConcurrencyPoint) error {
	server := fmt.Sprintf("in-process loopback server; injected device latency: %v/page read, %v/log force",
		o.ReadDelay, o.FlushDelay)
	if o.Addr != "" {
		server = "external server at " + o.Addr + " (its own device latencies apply)"
	}
	t := Table{
		Title: fmt.Sprintf("Concurrency/TCP: %d sessions pipelined over one multiplexed connection vs one lock-step connection",
			o.MaxClients),
		Columns: []string{"clients", "ops", "sec", "mux ops/sec", "speedup",
			"lockstep ops/sec", "vs lockstep", "inflight hw", "frames/flush", "bytes/frame",
			"commits", "forces/commit"},
	}
	for _, p := range pts {
		lockCol, vsLock := "-", "-"
		if p.LockstepOpsPerSec > 0 {
			lockCol = ms(p.LockstepOpsPerSec)
			vsLock = f1(ratio(p.OpsPerSec, p.LockstepOpsPerSec)) + "x"
		}
		t.AddRow(d(int64(p.Clients)), d(p.Ops), fmt.Sprintf("%.2f", p.Seconds),
			ms(p.OpsPerSec), f1(p.Speedup)+"x", lockCol, vsLock,
			d(p.NetInFlightHW), fmt.Sprintf("%.2f", p.FramesPerFlush()),
			fmt.Sprintf("%.0f", p.BytesPerFrame()),
			d(p.Commits), fmt.Sprintf("%.2f", p.ForcesPerCommit()))
	}
	t.Notes = append(t.Notes,
		server+"; every session of a point shares ONE TCP connection",
		"lock-step baseline holds the socket for each call's full round trip (the pre-multiplexing transport)",
		"inflight hw = peak requests concurrently inside the server off one connection; frames/flush > 1 = response writes coalesced into shared writev calls")
	s.emit(t)
	return nil
}
