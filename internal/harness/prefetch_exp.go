package harness

import (
	"fmt"

	"quickstore/internal/sim"
)

// PrefetchExp ("-exp prefetch") measures the mapping-object-driven prefetch
// extension: the Figure 8 cold traversals rerun on QuickStore with the
// prefetcher off and on. It is deliberately not part of "-exp all" — the
// extension is off by default, and the paper tables must stay byte-identical
// to the baseline — so the comparison lives in its own report. With -medium
// the Figure 14 (medium database) traversals are repeated the same way.
func (s *Suite) PrefetchExp() error {
	if err := s.prefetchCold(false, "Prefetch: cold traversal times, small database (QS, prefetch off vs on)"); err != nil {
		return err
	}
	return s.mediumGate(func() error {
		return s.prefetchCold(true, "Prefetch: cold traversal times, medium database (QS, prefetch off vs on)")
	})
}

func (s *Suite) prefetchCold(medium bool, title string) error {
	p := s.Small
	if medium {
		p = s.Medium
	}
	env, err := Build(SysQS, p)
	if err != nil {
		return err
	}
	ops := Ops(p)
	t := Table{Title: title,
		Columns: []string{"op", "off ms", "on ms", "gain", "off IOs", "on IOs", "pf.issued", "pf.hit", "pf.wasted", "result"}}
	for _, name := range []string{"T1", "T6", "T7", "T8", "T9"} {
		off, err := env.RunColdHot(ops[name], SessionOpts{})
		if err != nil {
			return err
		}
		on, err := env.RunColdHot(ops[name], SessionOpts{Prefetch: true})
		if err != nil {
			return err
		}
		if on.Result != off.Result {
			return fmt.Errorf("harness: prefetch changed %s result: off=%d on=%d", name, off.Result, on.Result)
		}
		t.AddRow(name,
			ms(off.ColdMs), ms(on.ColdMs),
			pct(1-ratio(on.ColdMs, off.ColdMs)),
			d(off.ColdIOs()), d(on.ColdIOs()),
			d(on.ColdDelta.Count(sim.CtrPrefetchIssued)),
			d(on.ColdDelta.Count(sim.CtrPrefetchHit)),
			d(on.ColdDelta.Count(sim.CtrPrefetchWasted)),
			d(int64(on.Result)))
	}
	t.Notes = append(t.Notes,
		"a prefetch hit is charged the network+server CPU leg only; the disk read overlapped with client computation")
	s.emit(t)
	return nil
}
