package harness

import (
	"strings"
	"testing"
	"time"
)

// shortConcOpts shrinks the bench so -race CI runs it in seconds while
// still exercising every concurrent path: shared faults across sessions,
// group-commit batching, and the big-lock baseline transport.
func shortConcOpts(maxClients int) ConcurrencyOpts {
	return ConcurrencyOpts{
		MaxClients:    maxClients,
		TxnsPerClient: 8,
		ReadsPerTxn:   8,
		SharedObjects: 128,
		ServerPool:    32,
		ReadDelay:     80 * time.Microsecond,
		FlushDelay:    160 * time.Microsecond,
		CommitWindow:  500 * time.Microsecond,
	}
}

// TestConcurrencyBenchStructure checks the sweep's bookkeeping: one point
// per client count, every transaction committed and accounted, the
// group-commit counters consistent, and the 1-client speedup pinned at 1x.
func TestConcurrencyBenchStructure(t *testing.T) {
	o := shortConcOpts(4)
	pts, err := RunConcurrencyBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // 1, 2, 4
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, want := range []int{1, 2, 4} {
		p := pts[i]
		if p.Clients != want {
			t.Fatalf("point %d: clients = %d, want %d", i, p.Clients, want)
		}
		if got := int64(p.Clients * o.TxnsPerClient); p.Commits != got {
			t.Errorf("%d clients: commits = %d, want %d", p.Clients, p.Commits, got)
		}
		wantOps := int64(p.Clients * o.TxnsPerClient * (o.ReadsPerTxn + 0))
		// every 4th transaction adds one update op
		wantOps += int64(p.Clients * (o.TxnsPerClient / 4))
		if p.Ops != wantOps {
			t.Errorf("%d clients: ops = %d, want %d", p.Clients, p.Ops, wantOps)
		}
		if p.LogForces <= 0 || p.LogForces > p.Commits {
			t.Errorf("%d clients: forces = %d outside (0, %d commits]", p.Clients, p.LogForces, p.Commits)
		}
		if p.OpsPerSec <= 0 || p.Seconds <= 0 {
			t.Errorf("%d clients: degenerate timing ops/sec=%v sec=%v", p.Clients, p.OpsPerSec, p.Seconds)
		}
		if p.BigLockOpsPerSec <= 0 {
			t.Errorf("%d clients: big-lock baseline missing", p.Clients)
		}
	}
	if pts[0].Speedup != 1 {
		t.Errorf("1-client speedup = %v, want exactly 1", pts[0].Speedup)
	}
	// The multi-client points must show group commit sharing forces: strictly
	// fewer forces than commits, with the difference showing up as
	// piggybacks.
	last := pts[len(pts)-1]
	if last.LogForces >= last.Commits {
		t.Errorf("%d clients: %d forces for %d commits, group commit batched nothing",
			last.Clients, last.LogForces, last.Commits)
	}
	if last.LogPiggybacks == 0 {
		t.Errorf("%d clients: no piggybacked commits", last.Clients)
	}
}

// TestConcurrencyBenchScales is a soft scaling gate for the test
// environment: 4 clients must beat 1 client by a modest margin (the
// acceptance bar of 3x at 8 clients is checked on the real oo7bench run,
// not under the race detector's ~10x slowdown).
func TestConcurrencyBenchScales(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scaling check skipped in -short")
	}
	pts, err := RunConcurrencyBench(shortConcOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.Speedup < 1.5 {
		t.Errorf("4-client speedup = %.2fx, want >= 1.5x", last.Speedup)
	}
	if last.BigLockOpsPerSec > 0 && last.OpsPerSec < last.BigLockOpsPerSec {
		t.Errorf("concurrent server (%.0f ops/sec) slower than big-lock baseline (%.0f ops/sec)",
			last.OpsPerSec, last.BigLockOpsPerSec)
	}
}

// TestConcurrencyExpEmitsTable runs the suite wiring end to end and checks
// the emitted table reaches TakeTables for the -clients JSON output.
func TestConcurrencyExpEmitsTable(t *testing.T) {
	var out strings.Builder
	s := NewSuite(&out, false)
	o := shortConcOpts(2)
	o.NoBigLock = true
	if err := s.ConcurrencyExp(o); err != nil {
		t.Fatal(err)
	}
	tables := s.TakeTables()
	if len(tables) != 1 {
		t.Fatalf("emitted %d tables, want 1", len(tables))
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("table has %d rows, want 2 (1 and 2 clients)", len(tables[0].Rows))
	}
	if !strings.Contains(out.String(), "Concurrency: multi-client throughput scaling") {
		t.Fatalf("report output missing the concurrency table:\n%s", out.String())
	}
}

// TestConcurrencyBenchNet runs the TCP mode end to end: sessions pipelined
// over one shared multiplexed connection against the serial lock-step
// baseline. The structural checks are exact; the mux-beats-lockstep check is
// soft (>=, not the 3x acceptance bar) because CI runs it under -race.
func TestConcurrencyBenchNet(t *testing.T) {
	o := shortConcOpts(4)
	o.Net = true
	pts, err := RunConcurrencyBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // 1, 2, 4
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for _, p := range pts {
		if got := int64(p.Clients * o.TxnsPerClient); p.Commits != got {
			t.Errorf("%d clients: commits = %d, want %d", p.Clients, p.Commits, got)
		}
		if p.LockstepOpsPerSec <= 0 {
			t.Errorf("%d clients: lock-step baseline missing", p.Clients)
		}
		if p.BigLockOpsPerSec != 0 {
			t.Errorf("%d clients: big-lock column set in net mode", p.Clients)
		}
		if p.NetFrames <= 0 || p.NetFlushes <= 0 || p.NetBytesOut <= 0 {
			t.Errorf("%d clients: transport counters missing: frames=%d flushes=%d bytes=%d",
				p.Clients, p.NetFrames, p.NetFlushes, p.NetBytesOut)
		}
		if p.NetFrames < p.NetFlushes {
			t.Errorf("%d clients: %d frames < %d flushes", p.Clients, p.NetFrames, p.NetFlushes)
		}
	}
	last := pts[len(pts)-1]
	if last.NetInFlightHW < 2 {
		t.Errorf("%d clients: in-flight high-water = %d, want >= 2 (no pipelining happened)",
			last.Clients, last.NetInFlightHW)
	}
	if testing.Short() {
		return
	}
	if last.OpsPerSec < last.LockstepOpsPerSec {
		t.Errorf("shared mux (%.0f ops/sec) slower than shared lock-step connection (%.0f ops/sec)",
			last.OpsPerSec, last.LockstepOpsPerSec)
	}
}

// TestConcurrencyExpNetTable checks the net-mode table wiring for the
// oo7bench -net JSON output.
func TestConcurrencyExpNetTable(t *testing.T) {
	var out strings.Builder
	s := NewSuite(&out, false)
	o := shortConcOpts(2)
	o.Net = true
	o.NoBigLock = true
	if err := s.ConcurrencyExp(o); err != nil {
		t.Fatal(err)
	}
	tables := s.TakeTables()
	if len(tables) != 1 {
		t.Fatalf("emitted %d tables, want 1", len(tables))
	}
	if !strings.Contains(out.String(), "Concurrency/TCP") {
		t.Fatalf("report output missing the TCP-mode table:\n%s", out.String())
	}
}
