package harness

import (
	"bytes"
	"strings"
	"testing"

	"quickstore/internal/core"
	"quickstore/internal/oo7"
	"quickstore/internal/sim"
)

// tinySuite builds a suite over the reduced test configurations.
func tinySuite(w *bytes.Buffer) *Suite {
	s := NewSuite(w, true)
	s.Small = oo7.SmallTest()
	s.Medium = oo7.SmallTest()
	s.Medium.NumAtomicPerComp = 40 // a "medium" that differs from small
	return s
}

func TestAllExperimentsRun(t *testing.T) {
	var out bytes.Buffer
	s := tinySuite(&out)
	if err := s.Run([]string{"all"}); err != nil {
		t.Fatalf("suite failed: %v\noutput so far:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"Table 2", "Figure 8", "Figure 9", "Table 5", "Table 6",
		"Figure 10", "Figure 11", "Figure 12", "Figure 13", "Table 7",
		"Figure 14", "Figure 15", "Figure 16", "Figure 17",
		"Ablation", "Extras",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out bytes.Buffer
	s := tinySuite(&out)
	if err := s.Run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestMediumGateSkips(t *testing.T) {
	var out bytes.Buffer
	s := tinySuite(&out)
	s.RunMedium = false
	if err := s.Run([]string{"fig14"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Error("medium experiment did not print a skip notice")
	}
}

// TestPaperShapes verifies the headline qualitative results on the reduced
// small configuration — the pass criteria from DESIGN.md §5.
func TestPaperShapes(t *testing.T) {
	var out bytes.Buffer
	s := tinySuite(&out)
	ro, err := s.readOnly(false)
	if err != nil {
		t.Fatal(err)
	}

	// Clustered dense traversal: QS beats E cold, with fewer I/Os.
	t1 := ro["T1"]
	if !(t1[SysQS].ColdMs < t1[SysE].ColdMs) {
		t.Errorf("cold T1: QS=%.0fms E=%.0fms, want QS faster", t1[SysQS].ColdMs, t1[SysE].ColdMs)
	}
	if !(t1[SysQS].ColdIOs() < t1[SysE].ColdIOs()) {
		t.Errorf("cold T1 I/Os: QS=%d E=%d", t1[SysQS].ColdIOs(), t1[SysE].ColdIOs())
	}
	// QS-B loses its size advantage and pays higher fault costs: slower
	// than E on the dense cold traversal.
	if !(t1[SysQSB].ColdMs > t1[SysE].ColdMs) {
		t.Errorf("cold T1: QS-B=%.0fms E=%.0fms, want QS-B slower", t1[SysQSB].ColdMs, t1[SysE].ColdMs)
	}

	// Hot traversals: QS at least as fast everywhere, much faster on the
	// manual scan.
	for _, op := range []string{"T1", "T6", "Q5"} {
		if ro[op][SysQS].HotMs > ro[op][SysE].HotMs {
			t.Errorf("hot %s: QS=%.1fms E=%.1fms, want QS <= E", op, ro[op][SysQS].HotMs, ro[op][SysE].HotMs)
		}
	}
	t8 := ro["T8"]
	if r := t8[SysE].HotMs / t8[SysQS].HotMs; r < 5 {
		t.Errorf("hot T8 E/QS ratio = %.1f, want the interpreter to dominate (>5x)", r)
	}

	// Per-fault cost: QS above E (Table 5's 20-26%).
	qsT1 := t1[SysQS]
	eT1 := t1[SysE]
	qsFault := (qsT1.ColdMs - qsT1.HotMs) / float64(qsT1.ColdDelta.Count(sim.CtrPageFaultTrap))
	eFault := (eT1.ColdMs - eT1.HotMs) / float64(eT1.ColdDelta.Count(sim.CtrClientRead))
	if !(qsFault > eFault) {
		t.Errorf("per-fault cost: QS=%.1fms E=%.1fms, want QS > E", qsFault, eFault)
	}
	if r := qsFault / eFault; r > 1.6 {
		t.Errorf("per-fault cost ratio %.2f too large (paper: ~1.2)", r)
	}
}

// TestUpdateShapes verifies the update-experiment claims.
func TestUpdateShapes(t *testing.T) {
	var out bytes.Buffer
	s := tinySuite(&out)
	upd, err := s.updateMeasurements(false)
	if err != nil {
		t.Fatal(err)
	}
	// Updates generate recovery work for both systems; QS diffs pages, E
	// copies objects.
	for _, name := range []string{"T2A", "T2B"} {
		qs := upd[name][SysQS].ColdDelta
		e := upd[name][SysE].ColdDelta
		if qs.Count(sim.CtrPageDiff) == 0 {
			t.Errorf("%s: QS diffed no pages", name)
		}
		if qs.Count(sim.CtrRecoveryCopy) == 0 {
			t.Errorf("%s: QS made no recovery copies", name)
		}
		if e.Count(sim.CtrSideBufferCopy) == 0 {
			t.Errorf("%s: E made no side-buffer copies", name)
		}
		if e.Count(sim.CtrPageDiff) != 0 {
			t.Errorf("%s: E diffed pages", name)
		}
	}
	// Dense updates favour QS relative to sparse ones: the QS/E time
	// ratio for T2B must be at most the ratio for T2A.
	ra := upd["T2A"][SysQS].ColdMs / upd["T2A"][SysE].ColdMs
	rb := upd["T2B"][SysQS].ColdMs / upd["T2B"][SysE].ColdMs
	if rb > ra*1.15 {
		t.Errorf("QS/E ratio: T2A=%.2f T2B=%.2f; dense updates should favour QS", ra, rb)
	}
	// T2B updates 4x fewer fields than T2C but QS response should be
	// close (repeated updates are nearly free for QS).
	qsB, qsC := upd["T2B"][SysQS].ColdMs, upd["T2C"][SysQS].ColdMs
	if qsC > qsB*1.5 {
		t.Errorf("QS T2C=%.0fms vs T2B=%.0fms; repeat updates should be cheap", qsC, qsB)
	}
}

// TestFig17Shape verifies that relocation degrades QS-OR more than QS-CR
// and that both degrade relative to no relocation.
func TestFig17Shape(t *testing.T) {
	p := oo7.SmallTest()
	ops := Ops(p)
	runT1 := func(mode core.RelocationMode, frac float64) Measurement {
		t.Helper()
		env, err := Build(SysQS, p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := env.RunColdHot(ops["T1"], SessionOpts{
			Relocation:       mode,
			RelocateFraction: frac,
			RelocSeed:        5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	baseline := runT1(core.RelocCR, 0)
	cr := runT1(core.RelocCR, 1.0)
	or := runT1(core.RelocOR, 1.0)
	if cr.ColdDelta.Count(sim.CtrSwizzledPtr) == 0 {
		t.Fatal("full relocation swizzled nothing")
	}
	if !(cr.ColdMs > baseline.ColdMs) {
		t.Errorf("CR@100%% (%.0fms) not slower than baseline (%.0fms)", cr.ColdMs, baseline.ColdMs)
	}
	if !(or.ColdMs > cr.ColdMs) {
		t.Errorf("OR@100%% (%.0fms) not slower than CR@100%% (%.0fms)", or.ColdMs, cr.ColdMs)
	}
	// OR ships pages; CR's read-only transaction ships nothing.
	if cr.ColdDelta.Count(sim.CtrCommitFlushPage) != 0 {
		t.Error("CR committed pages on a read-only traversal")
	}
	if or.ColdDelta.Count(sim.CtrCommitFlushPage) == 0 {
		t.Error("OR committed no pages")
	}
	// Results still correct under both policies.
	if cr.Result != baseline.Result || or.Result != baseline.Result {
		t.Errorf("relocation changed results: base=%d cr=%d or=%d", baseline.Result, cr.Result, or.Result)
	}
}
