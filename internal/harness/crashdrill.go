package harness

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/pagedelta"
	"quickstore/internal/wal"
)

// DrillOpts configures one crash drill: a seeded update workload over a
// file-backed store, a fault plane armed at one named point, a simulated
// process kill, and an invariant sweep over the recovered store.
type DrillOpts struct {
	Seed  int64  // drives the workload, the fault plane, and the values
	Point string // crash point to arm (faultinject.Pt*); "" = no crash
	HitN  int    // fire the crash on the n-th hit of Point; 0 = first

	TornWrite  bool // sub-page torn page write at the crash (detection mode)
	ShortFlush bool // the crashing log flush persists only a prefix
	Transient  int  // transient read faults injected before any crash

	Txns       int    // update transactions to attempt (per worker); 0 = 12
	AbortEvery int    // every n-th transaction aborts instead; 0 = never
	Objects    int    // oracle objects; 0 = 16
	Dir        string // scratch directory for the volume and log files

	// Workers > 1 runs that many concurrent client sessions against the
	// server, each updating its own contiguous slice of the oracle objects
	// (neighbors on boundary pages still collide, exercising the lock
	// manager). The crash then cuts off up to one in-flight transaction per
	// worker, and recovery must resolve each one atomically on its own.
	Workers int

	// Checkpointer runs fuzzy checkpoints in a loop concurrent with the
	// workload, so the checkpoint.* crash points fire while commits are in
	// flight and the log cut races transaction resolution. This is the
	// drill for the truncation boundary: a commit that lands anywhere in
	// the checkpoint window must survive the crash.
	Checkpointer bool
}

// DrillReport is the outcome of one drill. Violations lists every broken
// recovery invariant; a clean drill has none.
type DrillReport struct {
	Crashed    bool     // an armed crash fired during the workload
	Committed  int      // transactions whose commit was acknowledged
	Aborted    int      // transactions whose abort was acknowledged
	InDoubt    bool     // one commit/abort was cut off mid-protocol
	Retries    int64    // client requests re-sent after transient faults
	Violations []string // broken invariants (empty = drill passed)
	Trace      []string // fault-plane trace, for reproducing a failure
}

func (r *DrillReport) violate(format string, args ...interface{}) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// drillObj is one oracle-tracked object: the drill knows which value each
// object must hold after recovery.
type drillObj struct {
	oid       esm.OID
	worker    int    // owning workload session (0 for the single-session drill)
	committed uint64 // last value whose commit was acknowledged
	inDoubt   uint64 // value proposed by the in-doubt transaction, if any
	touched   bool   // the worker's in-doubt transaction touched this object
}

// payloadSize is the object size used by the drill: four objects to a
// page, so the default sixteen objects spread over more pages than the
// workload client's three frames — updates steal dirty pages to the
// server mid-transaction, and neighbors on a stolen page carry each
// other's uncommitted bytes.
const payloadSize = 2000

// drillCohFrame is one clean, tokened client frame captured right before
// the kill: what a warm client cache would still hold when it reconnects
// to the recovered server. The post-restart sweep presents the token back
// and checks the staleness invariant: "not modified" only if the cached
// bytes equal the committed image (modulo the 8-byte header LSN).
type drillCohFrame struct {
	pid   disk.PageID
	token uint64
	img   []byte
}

// captureCohFrames snapshots a client pool's clean versioned frames.
func captureCohFrames(c *esm.Client) []drillCohFrame {
	var out []drillCohFrame
	pool := c.Pool()
	for i := 0; i < pool.Len(); i++ {
		f := pool.Frame(i)
		if f.Page == disk.InvalidPage || f.Dirty || f.LSN == 0 {
			continue
		}
		out = append(out, drillCohFrame{
			pid:   f.Page,
			token: f.LSN,
			img:   append([]byte(nil), f.Data...),
		})
	}
	return out
}

// putValue encodes value and its checksum into the first 12 payload
// bytes. The checksum rides inside the page, so any torn or misdirected
// page write that slices through a payload is detectable after recovery.
func putValue(p []byte, value uint64) {
	binary.LittleEndian.PutUint64(p[:8], value)
	binary.LittleEndian.PutUint32(p[8:12], crc32.ChecksumIEEE(p[:8]))
}

// getValue decodes a payload written by putValue, verifying the checksum.
func getValue(p []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(p[:8])
	return v, crc32.ChecksumIEEE(p[:8]) == binary.LittleEndian.Uint32(p[8:12])
}

// RunCrashDrill executes one drill: build a committed baseline on a
// file-backed volume and log, arm the fault plane, run seeded update
// transactions through a steal-prone client until the crash fires (or the
// workload ends), kill the server without any orderly shutdown, reopen
// the files the way restart would find them, and verify every recovery
// invariant. The returned error reports harness problems (unusable
// scratch dir); invariant breaks go in the report instead.
func RunCrashDrill(opts DrillOpts) (*DrillReport, error) {
	if opts.Txns == 0 {
		opts.Txns = 12
	}
	if opts.Objects == 0 {
		opts.Objects = 16
	}
	if opts.HitN == 0 {
		opts.HitN = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &DrillReport{}

	volPath := filepath.Join(opts.Dir, "vol")
	logPath := filepath.Join(opts.Dir, "log")
	vol, err := disk.CreateFileVolume(volPath)
	if err != nil {
		return nil, err
	}
	logf, err := wal.CreateFileLog(logPath)
	if err != nil {
		return nil, err
	}

	plane := faultinject.New(opts.Seed)
	hv := disk.WithHook(vol, plane)
	logf.FlushHook = plane.FlushHook()
	// A two-frame server pool keeps the write-back (steal) path hot: most
	// installs and reads evict a dirty page to the volume, so the
	// pool.steal.* and disk.write points fire inside ordinary traffic.
	scfg := esm.ServerConfig{BufferPages: 2, Fault: plane}
	if opts.Workers > 1 {
		// Concurrent drills keep the pool smaller than the working set (the
		// steal path stays hot) but give the extra sessions a little room,
		// shorten the lock timeout so cross-worker page conflicts on
		// boundary pages resolve quickly, and turn on group commit so the
		// crash points fire inside batched log forces too.
		scfg.BufferPages = 4
		scfg.LockTimeout = 300 * time.Millisecond
		scfg.CommitWindow = 500 * time.Microsecond
	}
	srv, err := esm.NewServer(hv, logf, scfg)
	if err != nil {
		return nil, err
	}

	// Baseline: the oracle objects, committed and checkpointed before any
	// fault is armed.
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 3})
	if err := c.Begin(); err != nil {
		return nil, err
	}
	fid, err := c.CreateFile("drill")
	if err != nil {
		return nil, err
	}
	cl := c.NewCluster(fid)
	objs := make([]*drillObj, opts.Objects)
	for i := range objs {
		oid, data, err := c.CreateObject(cl, payloadSize)
		if err != nil {
			return nil, err
		}
		v := rng.Uint64()
		putValue(data, v)
		objs[i] = &drillObj{oid: oid, committed: v}
		if err := c.SetRoot(fmt.Sprintf("drill.obj.%d", i), oid, uint64(i)); err != nil {
			return nil, err
		}
	}
	if err := c.Commit(); err != nil {
		return nil, err
	}
	if err := srv.Checkpoint(); err != nil {
		return nil, err
	}

	// Arm the plane and run the workload until the crash.
	if opts.TornWrite {
		plane.SetTornWrite(1, disk.PageSize-1)
	}
	plane.SetShortFlush(opts.ShortFlush)
	if opts.Transient > 0 {
		plane.ArmTransient(faultinject.PtDiskRead, opts.Transient)
	}
	if opts.Point != "" {
		plane.ArmCrash(opts.Point, opts.HitN)
	}

	// The checkpointer races fuzzy checkpoints against the workload: the
	// log cut, volume sync, and truncation all happen while commits are in
	// flight. It stops on its own once the crash latch drops (every
	// checkpoint then fails fast) and is joined before verification so no
	// I/O races the handle teardown.
	stopCk := make(chan struct{})
	var ckWG sync.WaitGroup
	if opts.Checkpointer {
		ckWG.Add(1)
		go func() {
			defer ckWG.Done()
			for {
				select {
				case <-stopCk:
					return
				default:
				}
				if err := srv.Checkpoint(); err != nil {
					return
				}
			}
		}()
	}
	joinCk := func() {
		close(stopCk)
		ckWG.Wait()
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// Contiguous partition: worker wk owns objs[wk*per : (wk+1)*per), so
	// most pages stay within one worker and only boundary pages carry
	// cross-worker lock conflicts.
	per := (len(objs) + workers - 1) / workers
	for i := range objs {
		objs[i].worker = i / per
	}
	var attempts int64
	if workers > 1 {
		var retries int64
		var repMu sync.Mutex
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			lo, hi := wk*per, (wk+1)*per
			if hi > len(objs) {
				hi = len(objs)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(wk int, part []*drillObj) {
				defer wg.Done()
				drillWorker(srv, part, wk, opts, rep, &repMu, &attempts, &retries)
			}(wk, objs[lo:hi])
		}
		wg.Wait()
		joinCk()
		rep.Crashed = plane.Crashed()
		rep.Retries = atomic.LoadInt64(&retries)
		rep.Trace = plane.Trace()
		return drillVerify(opts, rep, objs, workers, atomic.LoadInt64(&attempts), volPath, logPath, vol, logf, nil)
	}

	w := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{
		BufferPages: 3, // steal-prone: dirty pages ship mid-transaction
		Retry:       esm.RetryPolicy{MaxAttempts: 4},
	})
workload:
	for t := 1; t <= opts.Txns; t++ {
		if err := w.Begin(); err != nil {
			break
		}
		// Update 1-3 distinct objects with fresh seeded values.
		picked := rng.Perm(len(objs))[:1+rng.Intn(3)]
		proposed := map[int]uint64{}
		for _, i := range picked {
			data, off, frame, err := w.ReadObjectAt(objs[i].oid)
			if err != nil {
				break workload
			}
			old := append([]byte(nil), data[:12]...)
			v := rng.Uint64()
			putValue(data, v)
			w.Pool().MarkDirty(frame)
			w.LogUpdate(objs[i].oid.Page, off, old, append([]byte(nil), data[:12]...))
			proposed[i] = v
		}
		atomic.AddInt64(&attempts, 1)
		if _, err := w.Counter("drill.count", 1); err != nil {
			break
		}
		if opts.AbortEvery > 0 && t%opts.AbortEvery == 0 {
			// Acked or not, an abort leaves only committed values behind.
			if err := w.Abort(); err != nil {
				break
			}
			rep.Aborted++
			continue
		}
		err := w.Commit()
		if err == nil {
			for i, v := range proposed {
				objs[i].committed = v
			}
			rep.Committed++
			continue
		}
		// The commit was cut off mid-protocol: recovery decides whether
		// this transaction happened, and the store must pick exactly one
		// of the two outcomes for all its objects.
		rep.InDoubt = true
		for i, v := range proposed {
			objs[i].inDoubt = v
			objs[i].touched = true
		}
		break
	}
	joinCk()
	rep.Crashed = plane.Crashed()
	rep.Retries = w.Retries()
	rep.Trace = plane.Trace()
	// Capture the workload client's surviving warm cache: clean frames and
	// the coherence tokens the server handed out before the kill. The
	// verify sweep presents these to the recovered server.
	cohFrames := captureCohFrames(w)
	if drillDebugCoh != nil {
		drillDebugCoh(len(cohFrames))
	}
	return drillVerify(opts, rep, objs, workers, atomic.LoadInt64(&attempts), volPath, logPath, vol, logf, cohFrames)
}

// drillWorker is one concurrent workload session: seeded update
// transactions over its own object partition until the crash (or an
// abandoned transaction) stops it. Any error short of a commit ack leaves
// the transaction for recovery to roll back; a commit cut off mid-protocol
// marks the worker's objects in doubt.
func drillWorker(srv *esm.Server, part []*drillObj, wk int, opts DrillOpts,
	rep *DrillReport, repMu *sync.Mutex, attempts, retries *int64) {
	rng := rand.New(rand.NewSource(opts.Seed + 7919*int64(wk+1)))
	w := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{
		BufferPages: 3, // steal-prone: dirty pages ship mid-transaction
		Retry:       esm.RetryPolicy{MaxAttempts: 4},
	})
	defer func() { atomic.AddInt64(retries, w.Retries()) }()
	for t := 1; t <= opts.Txns; t++ {
		if err := w.Begin(); err != nil {
			return
		}
		n := 1 + rng.Intn(3)
		if n > len(part) {
			n = len(part)
		}
		picked := rng.Perm(len(part))[:n]
		proposed := map[*drillObj]uint64{}
		for _, i := range picked {
			data, off, frame, err := w.ReadObjectAt(part[i].oid)
			if err != nil {
				return
			}
			old := append([]byte(nil), data[:12]...)
			v := rng.Uint64()
			putValue(data, v)
			w.Pool().MarkDirty(frame)
			w.LogUpdate(part[i].oid.Page, off, old, append([]byte(nil), data[:12]...))
			proposed[part[i]] = v
		}
		atomic.AddInt64(attempts, 1)
		if _, err := w.Counter("drill.count", 1); err != nil {
			return
		}
		if opts.AbortEvery > 0 && t%opts.AbortEvery == 0 {
			// Acked or not, an abort leaves only committed values behind.
			if err := w.Abort(); err != nil {
				return
			}
			repMu.Lock()
			rep.Aborted++
			repMu.Unlock()
			continue
		}
		err := w.Commit()
		if err == nil {
			for o, v := range proposed {
				o.committed = v
			}
			repMu.Lock()
			rep.Committed++
			repMu.Unlock()
			continue
		}
		// Cut off mid-commit: recovery decides whether this worker's
		// transaction happened, independently of the other workers'.
		for o, v := range proposed {
			o.inDoubt = v
			o.touched = true
		}
		repMu.Lock()
		rep.InDoubt = true
		repMu.Unlock()
		return
	}
}

// drillVerify kills the server, reopens the files the way restart would
// find them, and sweeps every recovery invariant.
func drillVerify(opts DrillOpts, rep *DrillReport, objs []*drillObj, workers int,
	attempts int64, volPath, logPath string, vol *disk.FileVolume, logf *wal.Log,
	cohFrames []drillCohFrame) (*DrillReport, error) {
	// Kill the process: no checkpoint, no close, just drop the handles.
	// Abandon/Close release descriptors without writing anything back.
	if err := vol.Abandon(); err != nil {
		return nil, err
	}
	_ = logf.Close()

	// Restart: reopen the files exactly as a fresh process would.
	vol2, err := disk.OpenFileVolume(volPath)
	if err != nil {
		rep.violate("reopen volume: %v", err)
		return rep, nil
	}
	defer vol2.Close()
	log2, err := wal.OpenFileLog(logPath)
	if err != nil {
		rep.violate("reopen log: %v", err)
		return rep, nil
	}
	defer log2.Close()

	// Invariant: the pruned log iterates cleanly with monotone LSNs.
	var prev wal.LSN
	if err := log2.Iterate(func(r wal.Record) bool {
		if r.LSN <= prev {
			rep.violate("log LSNs not monotone: %d after %d", r.LSN, prev)
			return false
		}
		prev = r.LSN
		return true
	}); err != nil {
		rep.violate("log iterate: %v", err)
	}

	srv2, err := esm.OpenServer(vol2, log2, esm.ServerConfig{BufferPages: 64})
	if err != nil {
		rep.violate("restart recovery: %v", err)
		return rep, nil
	}

	// Invariant: coherence across the crash. For every clean tokened frame
	// the pre-crash client still held, a versioned read against the
	// recovered server may answer "not modified" ONLY if the cached bytes
	// are byte-identical to the committed image (modulo the 8-byte header
	// LSN clients never read) — a too-old "not modified" after recovery is
	// a silent stale read. A delta answer must reconstruct exactly the
	// committed image when applied over the cached bytes.
	for _, f := range cohFrames {
		full := srv2.Handle(&esm.Request{Op: esm.OpReadPage, Page: uint32(f.pid)})
		if full.Err != "" {
			rep.violate("coherence sweep: page %d unreadable after restart: %s", f.pid, full.Err)
			continue
		}
		resp := srv2.Handle(&esm.Request{Op: esm.OpReadPage, Page: uint32(f.pid), N: f.token, Mode: esm.ReadVersioned})
		if resp.Err != "" {
			rep.violate("coherence sweep: versioned read of page %d: %s", f.pid, resp.Err)
			continue
		}
		switch resp.Mode {
		case esm.PageCurrent:
			if !bytes.Equal(f.img[8:], full.Data[8:]) {
				rep.violate("coherence sweep: recovery served not-modified for page %d (token %#x) but the committed bytes differ", f.pid, f.token)
			}
		case esm.PageDelta:
			patched := append([]byte(nil), f.img...)
			if err := pagedelta.Apply(patched, resp.Data); err != nil {
				rep.violate("coherence sweep: delta repair of page %d unappliable: %v", f.pid, err)
			} else if !bytes.Equal(patched[8:], full.Data[8:]) {
				rep.violate("coherence sweep: delta repair of page %d does not reconstruct the committed image", f.pid)
			}
		case esm.PageFull:
			if !bytes.Equal(resp.Data[8:], full.Data[8:]) {
				rep.violate("coherence sweep: full versioned read of page %d disagrees with the committed image", f.pid)
			}
		}
	}

	v := esm.NewClient(esm.NewInProcTransport(srv2), esm.ClientConfig{BufferPages: 8})
	if err := v.Begin(); err != nil {
		rep.violate("post-recovery begin: %v", err)
		return rep, nil
	}

	// Invariant: catalog roots still resolve to the same objects.
	for i, o := range objs {
		oid, aux, err := v.GetRoot(fmt.Sprintf("drill.obj.%d", i))
		if err != nil {
			rep.violate("root drill.obj.%d lost: %v", i, err)
			continue
		}
		if oid != o.oid || aux != uint64(i) {
			rep.violate("root drill.obj.%d points at %v/%d, want %v/%d", i, oid, aux, o.oid, i)
		}
	}

	// Invariant: every object holds its committed value (or, for objects
	// of a worker's in-doubt transaction, consistently the proposed value),
	// with an intact embedded checksum. Each worker contributes at most one
	// in-doubt transaction, and each must resolve atomically on its own.
	outcome := map[int]int{} // worker -> +1 per in-doubt object committed, -1 per rolled back
	touched := map[int]int{}
	for i, o := range objs {
		if o.touched {
			touched[o.worker]++
		}
		data, _, err := v.ReadObject(o.oid)
		if err != nil {
			rep.violate("object %d unreadable: %v", i, err)
			continue
		}
		got, ok := getValue(data)
		if !ok {
			rep.violate("object %d checksum broken (value %#x)", i, got)
			continue
		}
		switch {
		case got == o.committed && (!o.touched || got != o.inDoubt):
			if o.touched {
				outcome[o.worker]--
			}
		case o.touched && got == o.inDoubt:
			outcome[o.worker]++
		default:
			rep.violate("object %d holds %#x, want %#x%s", i, got, o.committed,
				inDoubtAlt(o))
		}
	}
	for wk := 0; wk < workers; wk++ {
		n := touched[wk]
		if got := outcome[wk]; n > 0 && got != n && got != -n {
			rep.violate("worker %d in-doubt transaction applied partially (%d of %d objects)",
				wk, (got+n)/2, n)
		}
	}

	// Invariant: the attempts counter survived within its bounds — every
	// acked commit carried it to the catalog, and nothing can exceed the
	// attempted increments.
	if count, err := v.Counter("drill.count", 0); err != nil {
		rep.violate("counter lost: %v", err)
	} else if int64(count) < int64(rep.Committed) || int64(count) > attempts {
		rep.violate("counter %d outside [%d committed, %d attempted]", count, rep.Committed, attempts)
	}

	// Invariant: the recovered store still takes transactions end to end.
	data, off, frame, err := v.ReadObjectAt(objs[0].oid)
	if err != nil {
		rep.violate("post-recovery read: %v", err)
		return rep, nil
	}
	old := append([]byte(nil), data[:12]...)
	putValue(data, 0xD0D0D0D0D0D0D0D0)
	v.Pool().MarkDirty(frame)
	v.LogUpdate(objs[0].oid.Page, off, old, append([]byte(nil), data[:12]...))
	if err := v.Commit(); err != nil {
		rep.violate("post-recovery commit: %v", err)
		return rep, nil
	}
	if err := v.Begin(); err == nil {
		if data, _, err := v.ReadObject(objs[0].oid); err != nil {
			rep.violate("post-recovery reread: %v", err)
		} else if got, ok := getValue(data); !ok || got != 0xD0D0D0D0D0D0D0D0 {
			rep.violate("post-recovery write lost (%#x, checksum %v)", got, ok)
		}
		if err := v.Commit(); err != nil {
			rep.violate("post-recovery reread commit: %v", err)
		}
	}
	return rep, nil
}

func inDoubtAlt(o *drillObj) string {
	if !o.touched {
		return ""
	}
	return fmt.Sprintf(" or in-doubt %#x", o.inDoubt)
}

// drillDebugCoh, when set by a test, observes the pre-kill coherence
// capture size (vacuity check for the sweep).
var drillDebugCoh func(int)
