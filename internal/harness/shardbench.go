package harness

import (
	"fmt"
	"sync"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/shard"
	"quickstore/internal/wal"
)

// ShardBenchOpts configures the horizontal scale-out sweep: a fixed
// session count driven against 1, 2, 4, ... page servers through
// client-side shard Routers. Each point runs twice — once perfectly
// partitioned (every session pinned to its home shard, one-phase
// commits only) and once with a fraction of cross-shard transactions —
// so the sweep reports both the scale-out curve and the measured cost
// of presumed-abort two-phase commit.
type ShardBenchOpts struct {
	MaxShards      int // sweep 1,2,4,... up to here; 0 = 4
	Sessions       int // concurrent client sessions at every point; 0 = 8
	TxnsPerSession int // committed transactions per session per run; 0 = 150
	CrossEvery     int // in the mixed run, every n-th txn touches a second shard; 0 = 5
	ObjsPerSession int // private objects per session per shard; 0 = 8
	// ServiceTime models each page server as one serial request loop: a
	// shard admits one request at a time and each costs this much. The
	// volumes and logs live in memory, so without it every request is a
	// microsecond and the sweep would measure Go scheduler noise; the
	// per-shard serial budget is the resource that sharding multiplies.
	// 0 = 25µs.
	ServiceTime time.Duration
}

func (o ShardBenchOpts) withDefaults() ShardBenchOpts {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&o.MaxShards, 4)
	def(&o.Sessions, 8)
	def(&o.TxnsPerSession, 150)
	def(&o.CrossEvery, 5)
	def(&o.ObjsPerSession, 8)
	if o.ServiceTime == 0 {
		o.ServiceTime = 25 * time.Microsecond
	}
	return o
}

func (o ShardBenchOpts) shardCounts() []int {
	var out []int
	for n := 1; n < o.MaxShards; n *= 2 {
		out = append(out, n)
	}
	return append(out, o.MaxShards)
}

// ShardPoint is one measured shard count.
type ShardPoint struct {
	Shards   int `json:"shards"`
	Sessions int `json:"sessions"`
	// Partitioned run: every transaction stays on its session's home
	// shard, so every commit takes the one-phase fast path.
	Txns       int64   `json:"txns"`
	Seconds    float64 `json:"seconds"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	Speedup    float64 `json:"speedup"` // vs the 1-shard point
	// Mixed run: CrossFrac of the transactions update a second shard and
	// commit through presumed-abort 2PC. CrossPenalty is the relative
	// throughput cost of that mix vs the partitioned run at the same
	// shard count; Prepares/CrossCommits are the router protocol totals.
	CrossFrac           float64 `json:"cross_frac"`
	MixedTxnsPerSec     float64 `json:"mixed_txns_per_sec"`
	CrossPenalty        float64 `json:"cross_penalty"` // 1 - mixed/partitioned
	Prepares            int64   `json:"prepares"`
	CrossCommits        int64   `json:"cross_commits"`
	SingleCommits       int64   `json:"single_commits"`
	UnresolvedOrInDoubt int64   `json:"unresolved"` // must be 0 in a clean run
}

// serialShard models one page-server process: a mutex admits one request
// at a time and each request costs the configured service time.
type serialShard struct {
	mu      sync.Mutex
	tr      esm.Transport
	service time.Duration
}

func (s *serialShard) Call(req *esm.Request) (*esm.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.service > 0 {
		time.Sleep(s.service)
	}
	return s.tr.Call(req)
}

func (s *serialShard) Close() error { return s.tr.Close() }

// shardBenchEnv is one cluster instance: n servers behind serial-model
// transports, plus each session's pre-created objects (one set per shard,
// so cross-shard transactions touch only session-private pages and the
// sweep measures protocol cost, not lock contention).
type shardBenchEnv struct {
	srvs []*esm.Server
	trs  []esm.Transport
	objs [][]esm.OID // [session][shard] -> private object
}

func buildShardBenchEnv(o ShardBenchOpts, n int) (*shardBenchEnv, error) {
	env := &shardBenchEnv{}
	for i := 0; i < n; i++ {
		srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 256})
		if err != nil {
			return nil, err
		}
		env.srvs = append(env.srvs, srv)
		env.trs = append(env.trs, &serialShard{tr: esm.NewInProcTransport(srv), service: o.ServiceTime})
	}
	// Setup runs without the service-time model in the way of wall-clock
	// fairness concerns: it is unmeasured.
	env.objs = make([][]esm.OID, o.Sessions)
	for s := 0; s < o.Sessions; s++ {
		env.objs[s] = make([]esm.OID, n)
		for sh := 0; sh < n; sh++ {
			r, err := shard.NewRouter(env.trs, shard.Config{Affinity: sh})
			if err != nil {
				return nil, err
			}
			c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
			if err := c.Begin(); err != nil {
				return nil, err
			}
			name := shard.NameOnShard(fmt.Sprintf("sbench.%d.%d", s, sh), sh, n)
			fid, err := c.CreateFile(name)
			if err != nil {
				return nil, err
			}
			cl := c.NewCluster(fid)
			var oid esm.OID
			for k := 0; k < o.ObjsPerSession; k++ {
				id, data, err := c.CreateObject(cl, 128)
				if err != nil {
					return nil, err
				}
				putValue(data, uint64(s)<<32|uint64(sh))
				if k == 0 {
					oid = id
				}
			}
			if err := c.Commit(); err != nil {
				return nil, err
			}
			env.objs[s][sh] = oid
		}
	}
	return env, nil
}

// runShardSession drives one session's measured loop: read-modify-write
// its home-shard object every transaction, plus — every crossEvery-th
// transaction (0 = never) — the session's object on the next shard,
// turning that commit into a cross-shard 2PC.
func runShardSession(env *shardBenchEnv, o ShardBenchOpts, session, n, crossEvery int) (shard.RouterStats, error) {
	home := session % n
	r, err := shard.NewRouter(env.trs, shard.Config{Affinity: home})
	if err != nil {
		return shard.RouterStats{}, err
	}
	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	touch := func(oid esm.OID, v uint64) error {
		data, off, frame, err := c.ReadObjectAt(oid)
		if err != nil {
			return err
		}
		old := append([]byte(nil), data[:12]...)
		putValue(data, v)
		c.Pool().MarkDirty(frame)
		c.LogUpdate(oid.Page, off, old, append([]byte(nil), data[:12]...))
		return nil
	}
	for t := 1; t <= o.TxnsPerSession; t++ {
		if err := c.Begin(); err != nil {
			return shard.RouterStats{}, err
		}
		if err := touch(env.objs[session][home], uint64(t)); err != nil {
			return shard.RouterStats{}, err
		}
		if n > 1 && crossEvery > 0 && t%crossEvery == 0 {
			other := (home + 1) % n
			if err := touch(env.objs[session][other], uint64(t)); err != nil {
				return shard.RouterStats{}, err
			}
		}
		if err := c.Commit(); err != nil {
			return shard.RouterStats{}, err
		}
	}
	return r.Stats(), nil
}

// measureShardRun runs all sessions once against a fresh cluster and
// returns total committed transactions, elapsed time, and summed router
// protocol counters.
func measureShardRun(o ShardBenchOpts, n, crossEvery int) (int64, float64, shard.RouterStats, error) {
	env, err := buildShardBenchEnv(o, n)
	if err != nil {
		return 0, 0, shard.RouterStats{}, err
	}
	var agg shard.RouterStats
	var aggMu sync.Mutex
	errs := make([]error, o.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < o.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st, err := runShardSession(env, o, s, n, crossEvery)
			errs[s] = err
			aggMu.Lock()
			agg.SingleCommits += st.SingleCommits
			agg.CrossCommits += st.CrossCommits
			agg.Prepares += st.Prepares
			agg.Unresolved += st.Unresolved
			aggMu.Unlock()
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for s, err := range errs {
		if err != nil {
			return 0, 0, agg, fmt.Errorf("session %d: %w", s, err)
		}
	}
	var indoubt int64
	for _, srv := range env.srvs {
		indoubt += int64(srv.InDoubtCount()) + int64(srv.DecisionCount())
	}
	agg.Unresolved += indoubt
	return int64(o.Sessions) * int64(o.TxnsPerSession), elapsed, agg, nil
}

// RunShardBench sweeps shard counts 1..MaxShards, measuring the
// partitioned scale-out curve and the mixed-workload 2PC overhead at
// each point.
func RunShardBench(opts ShardBenchOpts) ([]ShardPoint, error) {
	o := opts.withDefaults()
	var pts []ShardPoint
	for _, n := range o.shardCounts() {
		pt := ShardPoint{Shards: n, Sessions: o.Sessions}

		txns, secs, _, err := measureShardRun(o, n, 0)
		if err != nil {
			return nil, fmt.Errorf("shards=%d partitioned: %w", n, err)
		}
		pt.Txns = txns
		pt.Seconds = secs
		pt.TxnsPerSec = ratio(float64(txns), secs)

		mtxns, msecs, st, err := measureShardRun(o, n, o.CrossEvery)
		if err != nil {
			return nil, fmt.Errorf("shards=%d mixed: %w", n, err)
		}
		pt.MixedTxnsPerSec = ratio(float64(mtxns), msecs)
		pt.CrossPenalty = 1 - ratio(pt.MixedTxnsPerSec, pt.TxnsPerSec)
		pt.Prepares = st.Prepares
		pt.CrossCommits = st.CrossCommits
		pt.SingleCommits = st.SingleCommits
		pt.UnresolvedOrInDoubt = st.Unresolved
		if n > 1 {
			pt.CrossFrac = ratio(float64(st.CrossCommits), float64(st.CrossCommits+st.SingleCommits))
		}
		pts = append(pts, pt)
	}
	for i := range pts {
		pts[i].Speedup = ratio(pts[i].TxnsPerSec, pts[0].TxnsPerSec)
	}
	return pts, nil
}

// ShardExp ("oo7bench -shards N") runs the scale-out sweep, emits its
// table, and returns the measured points so the CLI can enforce the
// acceptance gate. Like the other wall-clock benches it is not part of
// "-exp all".
func (s *Suite) ShardExp(opts ShardBenchOpts) ([]ShardPoint, error) {
	o := opts.withDefaults()
	pts, err := RunShardBench(o)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: fmt.Sprintf("Horizontal scale-out: %d sessions over 1..%d page servers (service %v)",
			o.Sessions, o.MaxShards, o.ServiceTime),
		Columns: []string{"shards", "txn/s", "speedup", "mixed txn/s", "cross%", "2PC penalty", "prepares", "x-commits"},
	}
	for _, p := range pts {
		t.AddRow(
			d(int64(p.Shards)),
			f1(p.TxnsPerSec),
			f1(p.Speedup),
			f1(p.MixedTxnsPerSec),
			pct(p.CrossFrac),
			pct(p.CrossPenalty),
			d(p.Prepares),
			d(p.CrossCommits),
		)
		if p.UnresolvedOrInDoubt != 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("shards=%d left %d unresolved transactions (BUG)", p.Shards, p.UnresolvedOrInDoubt))
		}
	}
	t.Notes = append(t.Notes,
		"partitioned run: every commit one-phase on its session's home shard",
		fmt.Sprintf("mixed run: every %dth transaction updates a second shard via presumed-abort 2PC", o.CrossEvery),
	)
	s.emit(t)
	return pts, nil
}
