package harness

import (
	"path/filepath"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/oo7"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// TestCrashDrill runs the full drill matrix: every named crash point (plus
// a fault-free control), at two injection depths, with and without torn
// log tails, across seeds that also mix in transient read faults and
// aborting transactions. Every combination must recover with zero
// invariant violations.
func TestCrashDrill(t *testing.T) {
	points := append([]string{""}, faultinject.AllPoints()...)
	runs, crashes, committed := 0, 0, 0
	for _, pt := range points {
		for _, hitN := range []int{1, 3} {
			for _, short := range []bool{false, true} {
				for seed := int64(1); seed <= 4; seed++ {
					opts := DrillOpts{
						Seed:       seed*997 + int64(hitN)*31 + int64(len(pt)),
						Point:      pt,
						HitN:       hitN,
						ShortFlush: short,
						Transient:  int(seed%2) * 2,
						AbortEvery: 3,
						Dir:        t.TempDir(),
					}
					rep, err := RunCrashDrill(opts)
					if err != nil {
						t.Fatalf("point=%q hitN=%d short=%v seed=%d: %v", pt, hitN, short, opts.Seed, err)
					}
					for _, v := range rep.Violations {
						t.Errorf("point=%q hitN=%d short=%v seed=%d: %s (trace %v)",
							pt, hitN, short, opts.Seed, v, rep.Trace)
					}
					runs++
					if rep.Crashed {
						crashes++
					}
					committed += rep.Committed
				}
			}
		}
	}
	if runs < 200 {
		t.Fatalf("matrix ran %d combinations, want >= 200", runs)
	}
	// The matrix must actually exercise crashes and real commits, or the
	// invariant sweep is vacuous.
	if crashes < runs/4 {
		t.Fatalf("only %d of %d drills crashed; the points are not firing", crashes, runs)
	}
	if committed == 0 {
		t.Fatal("no drill committed a transaction")
	}
	t.Logf("crash drill: %d combinations, %d crashed, %d transactions committed", runs, crashes, committed)
}

// TestCrashDrillConcurrent runs the drill matrix with four concurrent
// workload sessions: every named crash point (plus a fault-free control)
// fires while four clients race reads, steals, group-committed log forces,
// and cross-worker page locks. Recovery must resolve each worker's in-doubt
// transaction atomically and independently.
func TestCrashDrillConcurrent(t *testing.T) {
	points := append([]string{""}, faultinject.AllPoints()...)
	runs, crashes, committed, inDoubt := 0, 0, 0, 0
	for _, pt := range points {
		for _, hitN := range []int{1, 4} {
			for seed := int64(1); seed <= 2; seed++ {
				opts := DrillOpts{
					Seed:       seed*499 + int64(hitN)*17 + int64(len(pt)),
					Point:      pt,
					HitN:       hitN,
					Workers:    4,
					Txns:       8,
					AbortEvery: 3,
					Transient:  int(seed % 2),
					Dir:        t.TempDir(),
				}
				rep, err := RunCrashDrill(opts)
				if err != nil {
					t.Fatalf("point=%q hitN=%d seed=%d: %v", pt, hitN, opts.Seed, err)
				}
				for _, v := range rep.Violations {
					t.Errorf("point=%q hitN=%d seed=%d workers=4: %s (trace %v)",
						pt, hitN, opts.Seed, v, rep.Trace)
				}
				runs++
				if rep.Crashed {
					crashes++
				}
				if rep.InDoubt {
					inDoubt++
				}
				committed += rep.Committed
			}
		}
	}
	// The concurrent matrix must actually exercise crashes, commits, and
	// cut-off transactions, or the sweep is vacuous.
	if crashes < runs/4 {
		t.Fatalf("only %d of %d concurrent drills crashed; the points are not firing", crashes, runs)
	}
	if committed == 0 {
		t.Fatal("no concurrent drill committed a transaction")
	}
	if inDoubt == 0 {
		t.Fatal("no concurrent drill left a transaction in doubt")
	}
	t.Logf("concurrent crash drill: %d combinations, %d crashed, %d committed, %d in doubt",
		runs, crashes, committed, inDoubt)
}

// TestCrashDrillDetectsTornPageWrites proves the drill's sensitivity: with
// sub-page torn writes enabled (breaking the atomic-page-write assumption
// the recovery protocol depends on), some seed must produce a detected
// invariant violation — a broken checksum, a lost committed value, or an
// unrecoverable catalog. If the drill cannot see planted corruption, its
// clean matrix runs prove nothing.
func TestCrashDrillDetectsTornPageWrites(t *testing.T) {
	detected := 0
	for seed := int64(1); seed <= 60; seed++ {
		for _, hitN := range []int{1, 2, 4} {
			rep, err := RunCrashDrill(DrillOpts{
				Seed:      seed,
				Point:     faultinject.PtDiskWrite,
				HitN:      hitN,
				TornWrite: true,
				Dir:       t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Crashed && len(rep.Violations) > 0 {
				detected++
			}
		}
		if detected > 0 {
			break
		}
	}
	if detected == 0 {
		t.Fatal("torn page writes never produced a detectable violation; the drill is blind")
	}
}

// TestCrashDrillOO7 runs the drill on the paper's own workload: an OO7
// database on a file-backed store, a T2 update transaction killed at a
// commit point, restart recovery, and the structural invariant that the
// T1 traversal sees exactly the same graph as before the crash.
func TestCrashDrillOO7(t *testing.T) {
	dir := t.TempDir()
	vol, err := disk.CreateFileVolume(filepath.Join(dir, "vol"))
	if err != nil {
		t.Fatal(err)
	}
	logf, err := wal.CreateFileLog(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	plane := faultinject.New(23)
	hv := disk.WithHook(vol, plane)
	logf.FlushHook = plane.FlushHook()
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(hv, logf, esm.ServerConfig{Clock: clock, Fault: plane})
	if err != nil {
		t.Fatal(err)
	}
	p := oo7.SmallTest()
	e := &Env{Sys: SysQS, Params: p, Clock: clock, Srv: srv}
	gen, err := e.open(SessionOpts{BufferPages: 64}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := oo7.Generate(gen, p); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	db, err := e.Session(SessionOpts{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := oo7.T1(db)
	if err != nil {
		t.Fatal(err)
	}
	if baseline == 0 {
		t.Fatal("empty OO7 database")
	}

	// Kill the server inside a T2 update's commit, before the log force:
	// the whole update transaction must vanish at restart.
	plane.ArmCrash(faultinject.PtCommitBeforeFlush, 1)
	if _, err := oo7.T2(db, oo7.VariantA); !faultinject.IsCrash(err) {
		t.Fatalf("T2 through an armed commit point returned %v", err)
	}
	if err := vol.Abandon(); err != nil {
		t.Fatal(err)
	}
	_ = logf.Close()

	vol2, err := disk.OpenFileVolume(filepath.Join(dir, "vol"))
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close()
	log2, err := wal.OpenFileLog(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	srv2, err := esm.OpenServer(vol2, log2, esm.ServerConfig{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	e2 := &Env{Sys: SysQS, Params: p, Clock: clock, Srv: srv2}
	db2, err := e2.Session(SessionOpts{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	after, err := oo7.T1(db2)
	if err != nil {
		t.Fatalf("T1 after recovery: %v", err)
	}
	if after != baseline {
		t.Fatalf("T1 sees %d parts after recovery, want %d", after, baseline)
	}
	// The recovered store still completes the same update workload.
	if _, err := oo7.T2(db2, oo7.VariantA); err != nil {
		t.Fatalf("T2 after recovery: %v", err)
	}
	if again, err := oo7.T1(db2); err != nil || again != baseline {
		t.Fatalf("T1 after recovered T2: %d, %v (want %d)", again, err, baseline)
	}
}

// TestCheckpointUnderLoadDrill races fuzzy checkpoints against four
// concurrent workload sessions and crashes inside the checkpoint itself —
// before the volume sync, before the log truncation, and just after it.
// This drills the truncation boundary: a transaction that begins and
// commits anywhere in the checkpoint window must survive the crash (the
// old quiescent checkpoint truncated such a transaction's records while
// its pages sat dirty only in the pool).
func TestCheckpointUnderLoadDrill(t *testing.T) {
	points := []string{
		"",
		faultinject.PtCheckpointBeforeSync,
		faultinject.PtCheckpointBeforeTruncate,
		faultinject.PtCheckpointAfterTruncate,
	}
	runs, crashes, committed := 0, 0, 0
	for _, pt := range points {
		for _, hitN := range []int{1, 2} {
			for seed := int64(1); seed <= 3; seed++ {
				opts := DrillOpts{
					Seed:         seed*733 + int64(hitN)*13 + int64(len(pt)),
					Point:        pt,
					HitN:         hitN,
					Workers:      4,
					Txns:         8,
					AbortEvery:   3,
					Checkpointer: true,
					Dir:          t.TempDir(),
				}
				rep, err := RunCrashDrill(opts)
				if err != nil {
					t.Fatalf("point=%q hitN=%d seed=%d: %v", pt, hitN, opts.Seed, err)
				}
				for _, v := range rep.Violations {
					t.Errorf("point=%q hitN=%d seed=%d: %s (trace %v)",
						pt, hitN, opts.Seed, v, rep.Trace)
				}
				runs++
				if rep.Crashed {
					crashes++
				}
				committed += rep.Committed
			}
		}
	}
	// The checkpoint points must actually fire mid-traffic, and commits
	// must land around them, or the truncation-boundary sweep is vacuous.
	if crashes == 0 {
		t.Fatal("no drill crashed inside a checkpoint; the points are not firing under load")
	}
	if committed == 0 {
		t.Fatal("no drill committed a transaction while checkpoints ran")
	}
	t.Logf("checkpoint drill: %d combinations, %d crashed, %d transactions committed",
		runs, crashes, committed)
}

// TestCrashDrillCoherenceSweepNonVacuous pins down that the pre-kill
// coherence capture actually collects clean tokened frames — otherwise the
// post-restart staleness sweep (never serve a too-old "not modified")
// passes vacuously.
func TestCrashDrillCoherenceSweepNonVacuous(t *testing.T) {
	total := 0
	drillDebugCoh = func(n int) { total += n }
	defer func() { drillDebugCoh = nil }()
	for seed := int64(1); seed <= 5; seed++ {
		rep, err := RunCrashDrill(DrillOpts{Seed: seed, Point: faultinject.PtCohAfterBump, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Crashed {
			t.Errorf("seed %d: coherence.after-bump never fired", seed)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
	if total == 0 {
		t.Error("no coherence frames captured; the sweep is vacuous")
	}
}
