package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/shard"
	"quickstore/internal/wal"
)

// ShardDrillOpts configures one sharded crash drill: a two-shard
// file-backed cluster, a workload of cross-shard transactions (each
// updates one object on every shard through presumed-abort 2PC), a
// process kill of either the coordinator or the participant shard at one
// named 2PC crash point, restart recovery of both shards, a resolution
// sweep, and an atomicity oracle over the recovered values.
type ShardDrillOpts struct {
	Seed   int64  // drives the fault plane trace
	Victim string // which shard dies: "coord" (shard 0) or "participant" (shard 1)
	Point  string // crash point to arm on the victim (faultinject.Pt*); "" = kill after the workload
	HitN   int    // fire the crash on the n-th hit of Point; 0 = first
	Txns   int    // cross-shard transactions to attempt; 0 = 8
	Dir    string // scratch directory for the volumes and logs
}

// ShardDrillReport is the outcome of one sharded drill. Violations lists
// every broken cross-shard invariant; a clean drill has none.
type ShardDrillReport struct {
	Victim     string               // the armed victim shard
	Point      string               // the armed crash point ("" = quiescent kill)
	Crashed    bool                 // the armed point fired during the workload
	Committed  int                  // transactions whose 2PC commit was acknowledged
	InDoubt    bool                 // one commit was cut off mid-protocol
	Resolved   shard.ResolveOutcome // what the post-restart sweep settled
	Violations []string             // broken invariants (empty = drill passed)
	Trace      []string             // victim fault-plane trace, for reproducing a failure
}

func (r *ShardDrillReport) violate(format string, args ...interface{}) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// ShardCrashPoints is the kill matrix's point list: every 2PC protocol
// step on both sides of the prepare/decision exchange.
var ShardCrashPoints = []string{
	faultinject.PtPrepareAfterInstall,
	faultinject.PtPrepareBeforeFlush,
	faultinject.PtPrepareAfterFlush,
	faultinject.PtDecisionBeforeFlush,
	faultinject.PtDecisionAfterFlush,
}

// shardDrillShard is one shard's on-disk state plus its live server.
type shardDrillShard struct {
	volPath, logPath string
	vol              *disk.FileVolume
	log              *wal.Log
	srv              *esm.Server
	plane            *faultinject.Plane
}

// RunShardDrill executes one sharded drill. The returned error reports
// harness problems (unusable scratch dir); invariant breaks go in the
// report instead.
func RunShardDrill(opts ShardDrillOpts) (*ShardDrillReport, error) {
	if opts.Txns == 0 {
		opts.Txns = 8
	}
	if opts.HitN == 0 {
		opts.HitN = 1
	}
	if opts.Victim == "" {
		opts.Victim = "coord"
	}
	victim := 0
	if opts.Victim == "participant" {
		victim = 1
	}
	rep := &ShardDrillReport{Victim: opts.Victim, Point: opts.Point}

	// Two file-backed shards. Only the victim gets the fault wiring: the
	// drill kills exactly one shard mid-protocol (then powers off both).
	shards := make([]*shardDrillShard, 2)
	for i := range shards {
		sd := &shardDrillShard{
			volPath: filepath.Join(opts.Dir, fmt.Sprintf("vol%d", i)),
			logPath: filepath.Join(opts.Dir, fmt.Sprintf("log%d", i)),
		}
		vol, err := disk.CreateFileVolume(sd.volPath)
		if err != nil {
			return nil, err
		}
		logf, err := wal.CreateFileLog(sd.logPath)
		if err != nil {
			return nil, err
		}
		sd.vol, sd.log = vol, logf
		cfg := esm.ServerConfig{BufferPages: 8}
		var hooked disk.Volume = vol
		if i == victim {
			sd.plane = faultinject.New(opts.Seed)
			hooked = disk.WithHook(vol, sd.plane)
			logf.FlushHook = sd.plane.FlushHook()
			cfg.Fault = sd.plane
		}
		srv, err := esm.NewServer(hooked, logf, cfg)
		if err != nil {
			return nil, err
		}
		sd.srv = srv
		shards[i] = sd
	}
	trs := func() []esm.Transport {
		return []esm.Transport{esm.NewInProcTransport(shards[0].srv), esm.NewInProcTransport(shards[1].srv)}
	}

	// Baseline: one oracle object per shard, committed and checkpointed
	// before the fault is armed. Both start at sequence 0.
	oids := make([]esm.OID, 2)
	for sh := range oids {
		r, err := shard.NewRouter(trs(), shard.Config{Affinity: sh})
		if err != nil {
			return nil, err
		}
		c := esm.NewClient(r, esm.ClientConfig{BufferPages: 4})
		if err := c.Begin(); err != nil {
			return nil, err
		}
		fid, err := c.CreateFile(shard.NameOnShard(fmt.Sprintf("sdrill.%d", sh), sh, 2))
		if err != nil {
			return nil, err
		}
		oid, data, err := c.CreateObject(c.NewCluster(fid), payloadSize)
		if err != nil {
			return nil, err
		}
		putValue(data, 0)
		if err := c.SetRoot(fmt.Sprintf("sdrill.obj.%d", sh), oid, 0); err != nil {
			return nil, err
		}
		if err := c.Commit(); err != nil {
			return nil, err
		}
		oids[sh] = oid
	}
	for _, sd := range shards {
		if err := sd.srv.Checkpoint(); err != nil {
			return nil, err
		}
	}

	if opts.Point != "" {
		shards[victim].plane.ArmCrash(opts.Point, opts.HitN)
	}

	// Workload: every transaction writes sequence t to BOTH objects —
	// shard 0 first, so shard 0 coordinates — and commits through 2PC.
	// The first error is the crash cutting the protocol off.
	router, err := shard.NewRouter(trs(), shard.Config{Affinity: 0})
	if err != nil {
		return nil, err
	}
	w := esm.NewClient(router, esm.ClientConfig{BufferPages: 4})
	inFlight := 0
	for t := 1; t <= opts.Txns; t++ {
		if err := w.Begin(); err != nil {
			break
		}
		ok := true
		for sh := 0; sh < 2; sh++ {
			data, off, frame, err := w.ReadObjectAt(oids[sh])
			if err != nil {
				ok = false
				break
			}
			old := append([]byte(nil), data[:12]...)
			putValue(data, uint64(t))
			w.Pool().MarkDirty(frame)
			w.LogUpdate(oids[sh].Page, off, old, append([]byte(nil), data[:12]...))
		}
		if !ok {
			inFlight = t
			break
		}
		if err := w.Commit(); err != nil {
			inFlight = t
			rep.InDoubt = true
			break
		}
		rep.Committed = t
	}
	rep.Crashed = shards[victim].plane != nil && shards[victim].plane.Crashed()
	if shards[victim].plane != nil {
		rep.Trace = shards[victim].plane.Trace()
	}
	if opts.Point != "" && !rep.Crashed {
		rep.violate("armed point %s never fired", opts.Point)
	}

	// Power failure: kill both shards with no orderly shutdown, then
	// restart each the way a fresh process would.
	for _, sd := range shards {
		if err := sd.vol.Abandon(); err != nil {
			return nil, err
		}
		_ = sd.log.Close()
	}
	rtrs := make([]esm.Transport, 2)
	rsrvs := make([]*esm.Server, 2)
	for i, sd := range shards {
		vol, err := disk.OpenFileVolume(sd.volPath)
		if err != nil {
			rep.violate("shard %d: reopen volume: %v", i, err)
			return rep, nil
		}
		defer vol.Close()
		logf, err := wal.OpenFileLog(sd.logPath)
		if err != nil {
			rep.violate("shard %d: reopen log: %v", i, err)
			return rep, nil
		}
		defer logf.Close()
		srv, err := esm.OpenServer(vol, logf, esm.ServerConfig{BufferPages: 16})
		if err != nil {
			rep.violate("shard %d: restart recovery: %v", i, err)
			return rep, nil
		}
		rsrvs[i] = srv
		rtrs[i] = esm.NewInProcTransport(srv)
	}

	// Presumed abort: a restarted coordinator must answer every inquiry
	// immediately — never Pending — so one sweep settles everything.
	out, err := shard.ResolveAll(rtrs)
	if err != nil {
		rep.violate("resolution sweep: %v", err)
		return rep, nil
	}
	rep.Resolved = out
	if out.Pending != 0 {
		rep.violate("coordinator answered Pending for %d transactions after restart", out.Pending)
	}
	for i, srv := range rsrvs {
		if n := srv.InDoubtCount(); n != 0 {
			rep.violate("shard %d still holds %d in-doubt transactions after the sweep", i, n)
		}
	}
	if n := rsrvs[0].DecisionCount(); n != 0 {
		rep.violate("coordinator still remembers %d decisions after a clean sweep", n)
	}

	// Atomicity oracle: both objects must hold the SAME sequence — the
	// cross-shard transaction either happened on both shards or neither —
	// and that sequence must cover every acknowledged commit.
	vr, err := shard.NewRouter(rtrs, shard.Config{Affinity: 0})
	if err != nil {
		return nil, err
	}
	v := esm.NewClient(vr, esm.ClientConfig{BufferPages: 4})
	if err := v.Begin(); err != nil {
		rep.violate("post-recovery begin: %v", err)
		return rep, nil
	}
	seqs := make([]uint64, 2)
	for sh := range oids {
		data, _, err := v.ReadObject(oids[sh])
		if err != nil {
			rep.violate("shard %d oracle object unreadable: %v", sh, err)
			return rep, nil
		}
		got, ckOK := getValue(data)
		if !ckOK {
			rep.violate("shard %d oracle object checksum broken", sh)
		}
		seqs[sh] = got
	}
	if seqs[0] != seqs[1] {
		rep.violate("ATOMICITY: shard 0 at seq %d, shard 1 at seq %d — a cross-shard commit applied on one shard only", seqs[0], seqs[1])
	}
	if seqs[0] < uint64(rep.Committed) {
		rep.violate("DURABILITY: recovered seq %d below last acknowledged commit %d", seqs[0], rep.Committed)
	}
	if inFlight > 0 && seqs[0] > uint64(inFlight) {
		rep.violate("recovered seq %d beyond any attempted transaction %d", seqs[0], inFlight)
	}

	// The cluster must accept new cross-shard work: every lock the
	// in-doubt transaction held has to be gone.
	if err := v.Abort(); err != nil {
		rep.violate("post-recovery abort: %v", err)
	}
	if err := v.Begin(); err != nil {
		rep.violate("post-recovery begin 2: %v", err)
		return rep, nil
	}
	for sh := range oids {
		data, off, frame, err := v.ReadObjectAt(oids[sh])
		if err != nil {
			rep.violate("post-recovery update read shard %d: %v", sh, err)
			return rep, nil
		}
		old := append([]byte(nil), data[:12]...)
		putValue(data, seqs[0]+1)
		v.Pool().MarkDirty(frame)
		v.LogUpdate(oids[sh].Page, off, old, append([]byte(nil), data[:12]...))
	}
	if err := v.Commit(); err != nil {
		rep.violate("post-recovery cross-shard commit failed: %v", err)
	}
	return rep, nil
}

// RunShardDrillMatrix runs the full kill matrix — each victim shard at
// every 2PC crash point — returning one report per cell. dir gets one
// scratch subdirectory per cell.
func RunShardDrillMatrix(seed int64, dir string) ([]*ShardDrillReport, error) {
	var reps []*ShardDrillReport
	for _, victim := range []string{"coord", "participant"} {
		for _, point := range ShardCrashPoints {
			sub := filepath.Join(dir, fmt.Sprintf("%s-%s", victim, pathSafe(point)))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return nil, err
			}
			rep, err := RunShardDrill(ShardDrillOpts{
				Seed:   seed,
				Victim: victim,
				Point:  point,
				Dir:    sub,
			})
			if err != nil {
				return nil, fmt.Errorf("%s at %s: %w", victim, point, err)
			}
			reps = append(reps, rep)
			seed++
		}
	}
	return reps, nil
}

func pathSafe(s string) string {
	out := []byte(s)
	for i := range out {
		if out[i] == '/' || out[i] == '.' {
			out[i] = '_'
		}
	}
	return string(out)
}
