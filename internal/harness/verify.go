package harness

import (
	"fmt"

	"quickstore/internal/core"
	"quickstore/internal/sim"
)

// Verify runs the paper's headline claims as programmatic assertions at
// full benchmark scale and prints one PASS/FAIL line per claim — the
// self-checking counterpart of EXPERIMENTS.md. It returns an error when any
// claim fails.
func (s *Suite) Verify() error {
	envs, err := s.envs(false)
	if err != nil {
		return err
	}
	ro, err := s.readOnly(false)
	if err != nil {
		return err
	}
	upd, err := s.updateMeasurements(false)
	if err != nil {
		return err
	}

	failures := 0
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		s.logf("%s  %-58s %s", status, name, detail)
	}

	// Table 2: QS database 55-70% of E's; QS-B at least E's size.
	sizeRatio := envs[SysQS].SizeMB() / envs[SysE].SizeMB()
	check("Table2: QS/E size ratio in [0.55,0.70] (paper 0.63)",
		sizeRatio > 0.55 && sizeRatio < 0.70, fmt.Sprintf("ratio=%.2f", sizeRatio))
	check("Table2: QS-B at least as big as E",
		envs[SysQSB].SizeMB() >= envs[SysE].SizeMB()*0.98,
		fmt.Sprintf("QS-B=%.1fMB E=%.1fMB", envs[SysQSB].SizeMB(), envs[SysE].SizeMB()))

	// Figure 8: clustered dense traversal.
	t1 := ro["T1"]
	check("Fig8: cold T1 QS 25-55% faster than E (paper 37%)",
		t1[SysQS].ColdMs < t1[SysE].ColdMs*0.75 && t1[SysQS].ColdMs > t1[SysE].ColdMs*0.45,
		fmt.Sprintf("QS=%.1fs E=%.1fs", t1[SysQS].ColdMs/1000, t1[SysE].ColdMs/1000))
	ioRatio := float64(t1[SysE].ColdIOs()) / float64(t1[SysQS].ColdIOs())
	check("Fig8/Table3: T1 I/O ratio E/QS near 2 (paper 2.1)",
		ioRatio > 1.6 && ioRatio < 2.6, fmt.Sprintf("E=%d QS=%d", t1[SysE].ColdIOs(), t1[SysQS].ColdIOs()))
	check("Fig8: cold T1 QS-B slower than E",
		t1[SysQSB].ColdMs > t1[SysE].ColdMs,
		fmt.Sprintf("QS-B=%.1fs E=%.1fs", t1[SysQSB].ColdMs/1000, t1[SysE].ColdMs/1000))

	// Unclustered operations: E comparable or better.
	for _, op := range []string{"T7", "T9", "Q1", "Q2"} {
		m := ro[op]
		check(fmt.Sprintf("Fig8/9: cold %s E at least as fast as QS", op),
			m[SysE].ColdMs <= m[SysQS].ColdMs*1.05,
			fmt.Sprintf("QS=%.0fms E=%.0fms", m[SysQS].ColdMs, m[SysE].ColdMs))
	}

	// Table 5: per-fault cost ratio.
	qsFault := (t1[SysQS].ColdMs - t1[SysQS].HotMs) / float64(t1[SysQS].ColdDelta.Count(sim.CtrPageFaultTrap))
	eFault := (t1[SysE].ColdMs - t1[SysE].HotMs) / float64(t1[SysE].ColdDelta.Count(sim.CtrClientRead))
	check("Table5: QS per-fault cost 8-35% above E (paper 24%)",
		qsFault > eFault*1.08 && qsFault < eFault*1.35,
		fmt.Sprintf("QS=%.1fms E=%.1fms", qsFault, eFault))

	// Table 6: data I/O dominates the QS fault.
	dataUs, mapUs, _ := ioTimeSplit(t1[SysQS].ColdDelta)
	total := t1[SysQS].ColdDelta.ElapsedMicros()
	check("Table6: data I/O 70-90% of cold T1 (paper 82-85% of fault time)",
		dataUs/total > 0.70 && dataUs/total < 0.90, fmt.Sprintf("share=%.2f", dataUs/total))
	check("Table6: map I/O a few percent (paper ~3.5%)",
		mapUs/total > 0.001 && mapUs/total < 0.08, fmt.Sprintf("share=%.3f", mapUs/total))

	// Hot results.
	check("Fig12: hot T1 E slower than QS (paper 23%)",
		ro["T1"][SysE].HotMs > ro["T1"][SysQS].HotMs,
		fmt.Sprintf("QS=%.0fms E=%.0fms", ro["T1"][SysQS].HotMs, ro["T1"][SysE].HotMs))
	t8r := ro["T8"][SysE].HotMs / ro["T8"][SysQS].HotMs
	check("Fig12: hot T8 E many times slower (paper 32x)",
		t8r > 10, fmt.Sprintf("ratio=%.0fx", t8r))

	// Table 7: EPVM share of E's hot T1.
	e1 := ro["T1"][SysE].HotDelta
	epvmShare := (e1.Micros(sim.CtrInterpCall) + e1.Micros(sim.CtrResidencyCheck) +
		e1.Micros(sim.CtrBigPtrDeref)) / e1.ElapsedMicros()
	check("Table7: EPVM 20-45% of E's hot T1 (paper 33%)",
		epvmShare > 0.20 && epvmShare < 0.45, fmt.Sprintf("share=%.2f", epvmShare))

	// Figure 10: updates.
	check("Fig10: T2A roughly erases QS's T1 advantage (paper: 4% apart)",
		upd["T2A"][SysQS].ColdMs > upd["T2A"][SysE].ColdMs*0.90 &&
			upd["T2A"][SysQS].ColdMs < upd["T2A"][SysE].ColdMs*1.15,
		fmt.Sprintf("QS=%.1fs E=%.1fs", upd["T2A"][SysQS].ColdMs/1000, upd["T2A"][SysE].ColdMs/1000))
	check("Fig10: T2B QS 10-30% faster than E (paper 17%)",
		upd["T2B"][SysQS].ColdMs < upd["T2B"][SysE].ColdMs*0.90 &&
			upd["T2B"][SysQS].ColdMs > upd["T2B"][SysE].ColdMs*0.65,
		fmt.Sprintf("QS=%.1fs E=%.1fs", upd["T2B"][SysQS].ColdMs/1000, upd["T2B"][SysE].ColdMs/1000))
	check("Fig10: repeated updates nearly free for QS (T2C vs T2B, paper: same)",
		upd["T2C"][SysQS].ColdMs < upd["T2B"][SysQS].ColdMs*1.10,
		fmt.Sprintf("T2B=%.1fs T2C=%.1fs", upd["T2B"][SysQS].ColdMs/1000, upd["T2C"][SysQS].ColdMs/1000))
	check("Fig10: QS-B collapses on dense updates (recovery-buffer overflow)",
		upd["T2B"][SysQSB].ColdMs > upd["T2B"][SysQS].ColdMs*2,
		fmt.Sprintf("QS-B=%.1fs QS=%.1fs", upd["T2B"][SysQSB].ColdMs/1000, upd["T2B"][SysQS].ColdMs/1000))
	check("Fig10: T3 times rise steadily A->B->C",
		upd["T3A"][SysQS].ColdMs < upd["T3B"][SysQS].ColdMs &&
			upd["T3B"][SysQS].ColdMs < upd["T3C"][SysQS].ColdMs,
		fmt.Sprintf("%.1f/%.1f/%.1fs", upd["T3A"][SysQS].ColdMs/1000,
			upd["T3B"][SysQS].ColdMs/1000, upd["T3C"][SysQS].ColdMs/1000))

	// Figure 17: relocation.
	ops := Ops(s.Small)
	baseEnv, err := Build(SysQS, s.Small)
	if err != nil {
		return err
	}
	baseM, err := baseEnv.RunColdHot(ops["T1"], SessionOpts{})
	if err != nil {
		return err
	}
	crEnv, err := Build(SysQS, s.Small)
	if err != nil {
		return err
	}
	crM, err := crEnv.RunColdHot(ops["T1"], SessionOpts{Relocation: core.RelocCR, RelocateFraction: 1, RelocSeed: 3})
	if err != nil {
		return err
	}
	orEnv, err := Build(SysQS, s.Small)
	if err != nil {
		return err
	}
	orM, err := orEnv.RunColdHot(ops["T1"], SessionOpts{Relocation: core.RelocOR, RelocateFraction: 1, RelocSeed: 3})
	if err != nil {
		return err
	}
	check("Fig17: CR@100% degrades mildly (paper +38%)",
		crM.ColdMs > baseM.ColdMs*1.05 && crM.ColdMs < baseM.ColdMs*1.6,
		fmt.Sprintf("base=%.1fs cr=%.1fs", baseM.ColdMs/1000, crM.ColdMs/1000))
	check("Fig17: OR@100% degrades steeply, worse than CR (paper +116%)",
		orM.ColdMs > crM.ColdMs*1.3,
		fmt.Sprintf("cr=%.1fs or=%.1fs", crM.ColdMs/1000, orM.ColdMs/1000))

	if failures > 0 {
		return fmt.Errorf("harness: %d of the paper's shape claims failed", failures)
	}
	s.logf("all shape claims hold")
	return nil
}
