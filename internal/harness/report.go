package harness

import (
	"fmt"
	"strings"

	"quickstore/internal/sim"
)

// Table is a rendered experiment result: the rows the paper reports, in the
// paper's orientation.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func ms(v float64) string  { return fmt.Sprintf("%.0f", v) }
func sec(v float64) string { return fmt.Sprintf("%.2f", v/1000) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func d(v int64) string     { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func mb(v float64) string  { return fmt.Sprintf("%.1f", v) }
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ioTimeSplit attributes a run's server I/O time between data pages,
// mapping objects, and bitmap objects, proportionally to the page-read
// counts (Table 6's data I/O vs map I/O decomposition).
func ioTimeSplit(dl sim.Snapshot) (dataUs, mapUs, bmUs float64) {
	ioUs := dl.Micros(sim.CtrServerDiskRead) + dl.Micros(sim.CtrServerBufferHit)
	reads := float64(dl.Count(sim.CtrClientRead))
	if reads == 0 {
		return 0, 0, 0
	}
	mapShare := float64(dl.Count(sim.CtrMapObjectRead)) / reads
	bmShare := float64(dl.Count(sim.CtrBitmapRead)) / reads
	return ioUs * (1 - mapShare - bmShare), ioUs * mapShare, ioUs * bmShare
}

// commitPhaseMs extracts the commit-time breakdown of Figure 11 from a
// run's counter delta: diffing, log generation, mapping-object updates, and
// the ESM flush (log force plus dirty-page shipping).
func commitPhaseMs(dl sim.Snapshot) (diff, logGen, mapUpd, flush float64) {
	diff = (dl.Micros(sim.CtrPageDiff) + dl.Micros(sim.CtrDiffByte)) / 1000
	logGen = (dl.Micros(sim.CtrLogRecord) + dl.Micros(sim.CtrLogByte) +
		dl.Micros(sim.CtrSideBufferCopy)) / 1000
	mapUpd = dl.Micros(sim.CtrMapUpdate) / 1000
	flush = (dl.Micros(sim.CtrCommitFlushPage) + dl.Micros(sim.CtrServerDiskWrite)) / 1000
	return
}
