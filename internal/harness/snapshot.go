package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quickstore/internal/esm"
	"quickstore/internal/lock"
)

// SnapshotBenchOpts tunes the read-mostly snapshot sweep: N reader sessions
// race a fixed set of writer sessions over a shared working set. Each
// reader burst runs twice — once as a snapshot session (BeginSnapshot,
// lock-free version-store reads) and once as the locked baseline (a write
// transaction taking an explicit Shared page lock per read, the 2PL
// discipline a consistent read required before MVCC). The writers are
// identical in both runs, so the delta is purely the read protocol.
type SnapshotBenchOpts struct {
	MaxSessions    int // sweep 1,2,4,... reader sessions up to here; 0 = 8
	TxnsPerSession int // snapshot sessions / locked txns per reader; 0 = 30
	ReadsPerTxn    int // shared-object reads per session or txn; 0 = 16
	Writers        int // concurrent writer sessions, always running; 0 = 2
	SharedObjects  int // shared working set; 0 = 256 (~64 pages)
	ServerPool     int // server frames; 0 = 48
	ClientPool     int // client frames per session; 0 = 8

	ReadDelay  time.Duration // injected device latency per page read; 0 = 120µs
	FlushDelay time.Duration // injected latency per log force; 0 = 240µs
}

func (o SnapshotBenchOpts) withDefaults() SnapshotBenchOpts {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&o.MaxSessions, 8)
	def(&o.TxnsPerSession, 30)
	def(&o.ReadsPerTxn, 16)
	def(&o.Writers, 2)
	def(&o.SharedObjects, 256)
	def(&o.ServerPool, 48)
	def(&o.ClientPool, 8)
	if o.ReadDelay == 0 {
		o.ReadDelay = 120 * time.Microsecond
	}
	if o.FlushDelay == 0 {
		o.FlushDelay = 240 * time.Microsecond
	}
	return o
}

func (o SnapshotBenchOpts) sessionCounts() []int {
	var out []int
	for c := 1; c < o.MaxSessions; c *= 2 {
		out = append(out, c)
	}
	return append(out, o.MaxSessions)
}

// SnapshotPoint is one measured reader-session count, snapshot mode vs the
// locked-read baseline. ReaderLockGrants is the lock-manager grant delta
// minus the grants the writers took — i.e. locks attributable to the read
// path. The acceptance bar: zero in snapshot mode at every point.
type SnapshotPoint struct {
	Sessions int `json:"sessions"`

	SnapOps       int64   `json:"snap_ops"`
	SnapSeconds   float64 `json:"snap_seconds"`
	SnapOpsPerSec float64 `json:"snap_ops_per_sec"`

	LockedOps       int64   `json:"locked_ops"`
	LockedSeconds   float64 `json:"locked_seconds"`
	LockedOpsPerSec float64 `json:"locked_ops_per_sec"`

	Speedup float64 `json:"speedup_vs_locked"`

	SnapReaderLockGrants   int64 `json:"snap_reader_lock_grants"`
	LockedReaderLockGrants int64 `json:"locked_reader_lock_grants"`
	SnapLockWaits          int64 `json:"snap_lock_waits"`
	LockedLockWaits        int64 `json:"locked_lock_waits"`

	SnapWriterCommits   int64 `json:"snap_writer_commits"`
	LockedWriterCommits int64 `json:"locked_writer_commits"`
}

// snapWriter updates random shared objects under an Exclusive page lock
// until stop closes. Each transaction takes exactly one lock while holding
// none, so writers can never complete a waits-for cycle; lockCalls counts
// the grants they consume so readers' share can be computed by subtraction.
func snapWriter(env *concEnv, o SnapshotBenchOpts, slot int, stop <-chan struct{},
	commits *atomic.Int64, lockCalls *atomic.Int64) error {
	c := esm.NewClient(esm.NewInProcTransport(env.srv), esm.ClientConfig{BufferPages: o.ClientPool})
	rng := rand.New(rand.NewSource(int64(9000 + slot)))
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		oid := env.shared[rng.Intn(len(env.shared))]
		if err := c.Begin(); err != nil {
			return err
		}
		if err := c.Lock(lock.KindPage, uint32(oid.Page), lock.Exclusive); err != nil {
			return err
		}
		lockCalls.Add(1)
		data, off, frame, err := c.ReadObjectAt(oid)
		if err != nil {
			return err
		}
		old := append([]byte(nil), data[:12]...)
		putValue(data, rng.Uint64())
		c.Pool().MarkDirty(frame)
		c.LogUpdate(oid.Page, off, old, append([]byte(nil), data[:12]...))
		if err := c.Commit(); err != nil {
			return err
		}
		commits.Add(1)
	}
}

// snapReader runs one reader session's bursts. In snapshot mode each burst
// is a snapshot session; in locked mode it is a write transaction taking a
// Shared page lock before every read, in ascending page order (single-lock
// writers plus ordered readers make the lock graph acyclic, so the 2PL
// baseline measures contention, not deadlock timeouts).
func snapReader(env *concEnv, o SnapshotBenchOpts, slot int, snapshot bool,
	ops *atomic.Int64, lockCalls *atomic.Int64) error {
	c := esm.NewClient(esm.NewInProcTransport(env.srv), esm.ClientConfig{BufferPages: o.ClientPool})
	rng := rand.New(rand.NewSource(int64(100 + slot)))
	for t := 0; t < o.TxnsPerSession; t++ {
		oids := make([]esm.OID, o.ReadsPerTxn)
		for i := range oids {
			oids[i] = env.shared[rng.Intn(len(env.shared))]
		}
		sort.Slice(oids, func(i, j int) bool { return oids[i].Page < oids[j].Page })
		if snapshot {
			if err := c.BeginSnapshot(); err != nil {
				return err
			}
		} else if err := c.Begin(); err != nil {
			return err
		}
		for _, oid := range oids {
			if !snapshot {
				if err := c.Lock(lock.KindPage, uint32(oid.Page), lock.Shared); err != nil {
					return err
				}
				lockCalls.Add(1)
			}
			if _, _, err := c.ReadObject(oid); err != nil {
				return err
			}
			ops.Add(1)
		}
		if snapshot {
			if err := c.EndSnapshot(); err != nil {
				return err
			}
		} else if err := c.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// measureSnap runs one (session count, mode) cell against a fresh database.
func measureSnap(o SnapshotBenchOpts, sessions int, snapshot bool) (SnapshotPoint, error) {
	pt := SnapshotPoint{Sessions: sessions}
	env, err := buildConcEnv(ConcurrencyOpts{
		MaxClients:    sessions,
		SharedObjects: o.SharedObjects,
		ServerPool:    o.ServerPool,
		ClientPool:    o.ClientPool,
		ReadDelay:     o.ReadDelay,
		FlushDelay:    o.FlushDelay,
		MVCC:          true,
	})
	if err != nil {
		return pt, err
	}
	defer env.close()
	before, err := env.stats()
	if err != nil {
		return pt, err
	}

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	var commits, writerLocks, readerLocks, ops atomic.Int64
	writerErrs := make([]error, o.Writers)
	for w := 0; w < o.Writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			writerErrs[w] = snapWriter(env, o, w, stop, &commits, &writerLocks)
		}(w)
	}

	readerErrs := make([]error, sessions)
	var readerWG sync.WaitGroup
	start := time.Now()
	for slot := 0; slot < sessions; slot++ {
		readerWG.Add(1)
		go func(slot int) {
			defer readerWG.Done()
			readerErrs[slot] = snapReader(env, o, slot, snapshot, &ops, &readerLocks)
		}(slot)
	}
	readerWG.Wait()
	elapsed := time.Since(start).Seconds()
	close(stop)
	writerWG.Wait()
	for slot, err := range append(readerErrs, writerErrs...) {
		if err != nil {
			return pt, fmt.Errorf("session %d: %w", slot, err)
		}
	}

	after, err := env.stats()
	if err != nil {
		return pt, err
	}
	readerGrants := (after.LockGrants - before.LockGrants) - writerLocks.Load()
	waits := after.LockWaits - before.LockWaits
	if snapshot {
		pt.SnapOps = ops.Load()
		pt.SnapSeconds = elapsed
		pt.SnapOpsPerSec = ratio(float64(pt.SnapOps), elapsed)
		pt.SnapReaderLockGrants = readerGrants
		pt.SnapLockWaits = waits
		pt.SnapWriterCommits = commits.Load()
	} else {
		pt.LockedOps = ops.Load()
		pt.LockedSeconds = elapsed
		pt.LockedOpsPerSec = ratio(float64(pt.LockedOps), elapsed)
		pt.LockedReaderLockGrants = readerGrants
		pt.LockedLockWaits = waits
		pt.LockedWriterCommits = commits.Load()
	}
	return pt, nil
}

// RunSnapshotBench sweeps reader-session counts and returns one point per
// count, each carrying both the snapshot measurement and the locked-read
// baseline over an identical fresh database and writer load.
func RunSnapshotBench(opts SnapshotBenchOpts) ([]SnapshotPoint, error) {
	o := opts.withDefaults()
	var pts []SnapshotPoint
	for _, n := range o.sessionCounts() {
		sp, err := measureSnap(o, n, true)
		if err != nil {
			return nil, err
		}
		lp, err := measureSnap(o, n, false)
		if err != nil {
			return nil, err
		}
		sp.LockedOps = lp.LockedOps
		sp.LockedSeconds = lp.LockedSeconds
		sp.LockedOpsPerSec = lp.LockedOpsPerSec
		sp.LockedReaderLockGrants = lp.LockedReaderLockGrants
		sp.LockedLockWaits = lp.LockedLockWaits
		sp.LockedWriterCommits = lp.LockedWriterCommits
		sp.Speedup = ratio(sp.SnapOpsPerSec, sp.LockedOpsPerSec)
		pts = append(pts, sp)
	}
	return pts, nil
}

// SnapshotExp ("oo7bench -snapshot") runs the read-mostly sweep and emits
// its table. Wall-clock, so not part of "-exp all" (whose output stays
// byte-identical to the paper baseline).
func (s *Suite) SnapshotExp(opts SnapshotBenchOpts) error {
	o := opts.withDefaults()
	pts, err := RunSnapshotBench(o)
	if err != nil {
		return err
	}
	t := Table{
		Title: fmt.Sprintf("Snapshot reads: %d writer(s) vs 1-%d reader sessions, MVCC snapshot vs Shared-lock baseline (wall clock)",
			o.Writers, o.MaxSessions),
		Columns: []string{"sessions", "snap ops/sec", "locked ops/sec", "speedup",
			"snap rd-locks", "locked rd-locks", "snap waits", "locked waits",
			"snap wr-commits", "locked wr-commits"},
	}
	for _, p := range pts {
		t.AddRow(d(int64(p.Sessions)), ms(p.SnapOpsPerSec), ms(p.LockedOpsPerSec),
			f1(p.Speedup)+"x", d(p.SnapReaderLockGrants), d(p.LockedReaderLockGrants),
			d(p.SnapLockWaits), d(p.LockedLockWaits),
			d(p.SnapWriterCommits), d(p.LockedWriterCommits))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("wall-clock bench; injected device latency: %v/page read, %v/log force; %d shared objects",
			o.ReadDelay, o.FlushDelay, o.SharedObjects),
		"rd-locks = lock-manager grants minus the writers' own; the snapshot column must be 0 — readers never touch the lock manager",
		"locked baseline: each read burst is a 2PL transaction taking a Shared page lock per read while writers take Exclusive locks")
	s.emit(t)
	return nil
}
