package harness

import "testing"

// A scaled-down run: correctness of the machinery (zero stale reads in
// both modes, coherence traffic only in the coherent mode, bytes
// actually saved), not the 5x performance claim — that is oo7bench
// -warm's acceptance gate.
func TestWarmCacheBenchSmoke(t *testing.T) {
	res, err := RunWarmCacheBench(WarmCacheOpts{
		Objects:       32,
		ObjectSize:    512,
		Rounds:        6,
		DirtyPerRound: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []WarmCachePoint{res.Coherent, res.Baseline} {
		if p.StaleReads != 0 {
			t.Errorf("%s mode observed %d stale reads", p.Mode, p.StaleReads)
		}
		if p.Bytes <= 0 {
			t.Errorf("%s mode metered %d bytes", p.Mode, p.Bytes)
		}
	}
	if res.Coherent.Validates != 6 {
		t.Errorf("coherent run served %d validate batches, want 6", res.Coherent.Validates)
	}
	if res.Coherent.Deltas+res.Coherent.Fulls == 0 {
		t.Error("coherent run repaired nothing; the writer's updates never reached the reader")
	}
	if res.Baseline.Validates != 0 || res.Baseline.Deltas != 0 || res.Baseline.Fulls != 0 {
		t.Errorf("refetch baseline shows coherence traffic: %+v", res.Baseline)
	}
	if res.Reduction <= 1 {
		t.Errorf("coherent mode saved no bytes: reduction %.2fx", res.Reduction)
	}
}
