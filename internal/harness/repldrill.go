package harness

import (
	"fmt"
	"math/rand"
	"time"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/repl"
	"quickstore/internal/wal"
)

// ReplDrillOpts configures one replicated crash drill: a three-node
// in-process cluster (leader + 2 followers, quorum 2), a seeded update
// workload through the leader, the leader killed at one named crash point,
// an explicit failover to the most-durable follower, and a sweep through a
// Director verifying that no quorum-acked commit was lost.
type ReplDrillOpts struct {
	Seed  int64  // drives the workload, the fault plane, and the values
	Point string // crash point to arm on the leader (faultinject.Pt*); "" = kill after the workload
	HitN  int    // fire the crash on the n-th hit of Point; 0 = first

	Txns int // update transactions to attempt; 0 = 12
	Keys int // oracle objects (named roots); 0 = 6
}

// ReplDrillReport is the outcome of one replicated drill. Violations lists
// every broken replication invariant; a clean drill has none.
type ReplDrillReport struct {
	Point      string   // the armed crash point ("" = quiescent kill)
	Crashed    bool     // the armed point fired during the workload
	ForcedKill bool     // the point never fired; the leader was killed after the workload
	Committed  int      // transactions whose commit was quorum-acked
	InDoubt    bool     // one commit was cut off mid-protocol by the crash
	FailedOver bool     // a follower won the election
	NewLeader  string   // the elected node's ID
	Term       uint64   // the cluster term after failover
	Violations []string // broken invariants (empty = drill passed)
	Trace      []string // leader fault-plane trace, for reproducing a failure
}

func (r *ReplDrillReport) violate(format string, args ...interface{}) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// replKey is one oracle-tracked named object.
type replKey struct {
	name      string
	ref       core.Ref
	committed uint64 // last value whose commit was quorum-acked
	inDoubt   uint64 // value proposed by the in-doubt transaction, if any
	touched   bool   // the in-doubt transaction updated this key
}

// replDrillNode is one cluster member's storage plus its repl node.
type replDrillNode struct {
	log  *wal.Log
	node *repl.Node
}

// RunReplDrill executes one replicated drill. The workload runs through the
// full QuickStore (core) layer so the diff-based commit logs every changed
// page byte — exactly what a follower needs to reconstruct pages from the
// shipped log at promotion. The returned error reports harness problems;
// invariant breaks go in the report instead.
func RunReplDrill(opts ReplDrillOpts) (*ReplDrillReport, error) {
	if opts.Txns == 0 {
		opts.Txns = 12
	}
	if opts.Keys == 0 {
		opts.Keys = 6
	}
	if opts.HitN == 0 {
		opts.HitN = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &ReplDrillReport{Point: opts.Point}

	// The leader gets the full fault wiring — hooked volume, hooked log
	// flush, plane in both the server and the repl node — so disk, wal,
	// commit, steal, and repl.* points all fire on its paths. Followers run
	// clean: the drill kills exactly one node.
	plane := faultinject.New(opts.Seed)
	leaderVol := disk.WithHook(disk.NewMemVolume(), plane)
	leaderLog := wal.NewMemLog()
	leaderLog.FlushHook = plane.FlushHook()
	nodeCfg := func(id string, pl *faultinject.Plane) repl.Config {
		return repl.Config{
			ID:                id,
			Quorum:            2,
			HeartbeatInterval: 5 * time.Millisecond,
			QuorumTimeout:     time.Second,
			Server:            esm.ServerConfig{BufferPages: 64},
			Fault:             pl,
		}
	}
	srv, err := esm.NewServer(leaderVol, leaderLog, esm.ServerConfig{BufferPages: 8, Fault: plane})
	if err != nil {
		return nil, err
	}
	nodes := []*replDrillNode{{log: leaderLog}}
	nodes[0].node = repl.NewLeader(srv, nodeCfg("n1", plane))
	for i := 2; i <= 3; i++ {
		fLog := wal.NewMemLog()
		nodes = append(nodes, &replDrillNode{
			log:  fLog,
			node: repl.NewFollower(disk.NewMemVolume(), fLog, nodeCfg(fmt.Sprintf("n%d", i), nil)),
		})
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				a.node.AddPeer(b.node.ID(), "", b.node.Transport())
			}
		}
	}
	defer func() {
		for _, dn := range nodes {
			_ = dn.node.Close()
		}
	}()

	// Baseline: every key committed and quorum-acked before any fault is
	// armed. Failures here are harness problems, not invariant breaks.
	leader := nodes[0].node
	st, err := core.New(esm.NewClient(leader.Transport(), esm.ClientConfig{BufferPages: 32}), core.Config{})
	if err != nil {
		return nil, fmt.Errorf("repl drill baseline: %w", err)
	}
	if err := st.Begin(); err != nil {
		return nil, fmt.Errorf("repl drill baseline: %w", err)
	}
	cl := st.NewCluster()
	keys := make([]*replKey, opts.Keys)
	buf := make([]byte, 16)
	for i := range keys {
		k := &replKey{name: fmt.Sprintf("k%d", i), committed: rng.Uint64()}
		if k.ref, err = st.Alloc(cl, 16, nil); err != nil {
			return nil, fmt.Errorf("repl drill baseline: %w", err)
		}
		putValue(buf, k.committed)
		if err := st.Space().WriteBytes(k.ref, buf); err != nil {
			return nil, fmt.Errorf("repl drill baseline: %w", err)
		}
		if err := st.SetRoot(k.name, k.ref); err != nil {
			return nil, fmt.Errorf("repl drill baseline: %w", err)
		}
		keys[i] = k
	}
	if err := st.Commit(); err != nil {
		return nil, fmt.Errorf("repl drill baseline: %w", err)
	}

	if opts.Point != "" {
		plane.ArmCrash(opts.Point, opts.HitN)
	}

	// Workload: seeded update transactions against the acked baseline. A
	// commit error after the crash latch marks that one transaction in
	// doubt; everything acked before it stays in the oracle.
	for t := 1; t <= opts.Txns && !plane.Crashed(); t++ {
		if err := st.Begin(); err != nil {
			break
		}
		picked := rng.Perm(len(keys))[:1+rng.Intn(3)]
		proposed := map[*replKey]uint64{}
		preCommitErr := false
		for _, i := range picked {
			v := rng.Uint64()
			putValue(buf, v)
			if err := st.Space().WriteBytes(keys[i].ref, buf); err != nil {
				preCommitErr = true
				break
			}
			proposed[keys[i]] = v
		}
		if preCommitErr {
			// The transaction never reached commit: recovery must roll it
			// back wholesale, so the oracle keeps the committed values.
			break
		}
		err := st.Commit()
		if err == nil {
			for k, v := range proposed {
				k.committed = v
			}
			rep.Committed++
			continue
		}
		if !plane.Crashed() {
			rep.violate("commit failed without a crash: %v", err)
			return rep, nil
		}
		// Cut off mid-commit: the new leader's recovery decides whether
		// this transaction happened, and must pick one outcome for all of
		// its keys.
		rep.InDoubt = true
		for k, v := range proposed {
			k.inDoubt = v
			k.touched = true
		}
		break
	}
	rep.Crashed = plane.Crashed()
	if !rep.Crashed {
		// The armed point never fired (or none was armed): kill the leader
		// at quiescence instead, so every drill exercises failover. The
		// ship point is armed and hit directly — the latch is what matters.
		rep.ForcedKill = true
		plane.ArmCrash(faultinject.PtReplShip, 1)
		_ = plane.Hit(faultinject.PtReplShip)
	}
	rep.Trace = plane.Trace()

	// Failover: promote the follower with the longest durable log. With
	// quorum 2 of 3 it is guaranteed to hold every acked commit.
	best, other := nodes[1], nodes[2]
	if other.log.FlushedLSN() > best.log.FlushedLSN() {
		best, other = other, best
	}
	if err := best.node.Campaign(); err != nil {
		if err2 := other.node.Campaign(); err2 != nil {
			rep.violate("no follower could be elected: %v / %v", err, err2)
			return rep, nil
		}
		best = other
	}
	rep.FailedOver = true
	rep.NewLeader = best.node.ID()
	rep.Term = best.node.Term()
	if rep.Term < 2 {
		rep.violate("failover did not advance the term: %d", rep.Term)
	}

	// Verification runs the way a real client would come back: through a
	// Director over every endpoint, which routes around the dead leader.
	d := repl.NewDirector([]repl.Endpoint{
		{ID: "n1", Tr: nodes[0].node.Transport()},
		{ID: "n2", Tr: nodes[1].node.Transport()},
		{ID: "n3", Tr: nodes[2].node.Transport()},
	}, repl.DirectorConfig{})
	defer d.Close()
	vs, err := core.Open(esm.NewClient(d, esm.ClientConfig{BufferPages: 32}), core.Config{})
	if err != nil {
		rep.violate("reopen through director after failover: %v", err)
		return rep, nil
	}
	if err := vs.Begin(); err != nil {
		rep.violate("begin on new leader: %v", err)
		return rep, nil
	}
	sawCommitted, sawProposed := false, false
	for _, k := range keys {
		ref, err := vs.Root(k.name)
		if err != nil {
			rep.violate("%s: root lost after failover: %v", k.name, err)
			continue
		}
		if err := vs.Space().ReadInto(ref, buf); err != nil {
			rep.violate("%s: unreadable after failover: %v", k.name, err)
			continue
		}
		got, ok := getValue(buf)
		if !ok {
			rep.violate("%s: checksum broken after failover (value %#x)", k.name, got)
			continue
		}
		switch {
		case got == k.committed:
			if k.touched {
				sawCommitted = true
			}
		case k.touched && got == k.inDoubt:
			sawProposed = true
		default:
			rep.violate("%s: quorum-acked value lost: got %#x want %#x", k.name, got, k.committed)
		}
	}
	if err := vs.Abort(); err != nil {
		rep.violate("abort verify txn: %v", err)
	}
	if sawCommitted && sawProposed {
		rep.violate("in-doubt transaction resolved non-atomically: some keys rolled back, some committed")
	}

	// Liveness: the surviving pair is still a quorum; a fresh commit must
	// ack and read back through the Director.
	if err := vs.Begin(); err != nil {
		rep.violate("post-failover begin: %v", err)
		return rep, nil
	}
	const sentinel = 0xFEEDFACECAFEBEEF
	putValue(buf, sentinel)
	ref, err := vs.Root(keys[0].name)
	if err == nil {
		err = vs.Space().WriteBytes(ref, buf)
	}
	if err == nil {
		err = vs.Commit()
	}
	if err != nil {
		rep.violate("post-failover commit failed: %v", err)
		return rep, nil
	}
	if err := vs.Begin(); err != nil {
		rep.violate("post-failover read: %v", err)
		return rep, nil
	}
	defer func() {
		if err := vs.Abort(); err != nil {
			rep.violate("abort final read txn: %v", err)
		}
	}()
	if ref, err = vs.Root(keys[0].name); err == nil {
		err = vs.Space().ReadInto(ref, buf)
	}
	if err != nil {
		rep.violate("post-failover read: %v", err)
	} else if got, ok := getValue(buf); !ok || got != sentinel {
		rep.violate("post-failover write not visible: got %#x ok=%v", got, ok)
	}
	return rep, nil
}

// ReplBenchOpts configures the quorum-commit throughput comparison.
type ReplBenchOpts struct {
	Sessions       []int // client-session sweep; nil = 1, 2, 4
	TxnsPerSession int   // committed transactions per session; 0 = 30

	// Injected device latencies, as in ConcurrencyOpts: without them every
	// in-memory commit is a few microseconds and the ratio would measure
	// scheduler noise rather than the replication protocol.
	FlushDelay time.Duration // per physical log force; 0 = 240µs
}

// ReplBenchPoint is one measured session count.
type ReplBenchPoint struct {
	Sessions        int     `json:"sessions"`
	SingleOpsPerSec float64 `json:"single_ops_per_sec"` // unreplicated baseline
	QuorumOpsPerSec float64 `json:"quorum_ops_per_sec"` // 3-node cluster, quorum 2
	Ratio           float64 `json:"ratio"`              // quorum / single
	ShipRounds      int64   `json:"ship_rounds"`        // leader ship rounds during the run
	QuorumWaitMs    float64 `json:"quorum_wait_ms"`     // total time commits spent gated
}

// ReplBenchReport is the full sweep, serialized into BENCH_repl.json.
type ReplBenchReport struct {
	Points []ReplBenchPoint `json:"points"`
}

// RunReplBench measures quorum-commit throughput against a single-node
// baseline at each session count. Both sides run the same commit-heavy
// workload (one counter bump per transaction, one counter per session) over
// in-memory devices with an injected log-force latency; the replicated side
// adds a 3-node cluster with quorum 2, so the measured gap is the ship
// round trip and the quorum wait — which group commit and batched shipping
// are supposed to amortize as sessions grow.
func RunReplBench(opts ReplBenchOpts) (*ReplBenchReport, error) {
	if len(opts.Sessions) == 0 {
		opts.Sessions = []int{1, 2, 4}
	}
	if opts.TxnsPerSession == 0 {
		opts.TxnsPerSession = 30
	}
	if opts.FlushDelay == 0 {
		opts.FlushDelay = 240 * time.Microsecond
	}
	rep := &ReplBenchReport{}
	for _, sessions := range opts.Sessions {
		single, _, _, err := replBenchRun(opts, sessions, false)
		if err != nil {
			return nil, err
		}
		quorum, rounds, waitNs, err := replBenchRun(opts, sessions, true)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, ReplBenchPoint{
			Sessions:        sessions,
			SingleOpsPerSec: single,
			QuorumOpsPerSec: quorum,
			Ratio:           ratio(quorum, single),
			ShipRounds:      rounds,
			QuorumWaitMs:    float64(waitNs) / 1e6,
		})
	}
	return rep, nil
}

// replBenchRun measures one configuration: commits per second over the
// given session count, optionally behind a 3-node quorum-2 cluster.
func replBenchRun(opts ReplBenchOpts, sessions int, replicated bool) (opsPerSec float64, shipRounds, quorumWaitNs int64, err error) {
	mkLog := func() *wal.Log {
		l := wal.NewMemLog()
		l.FlushHook = func(pending int) (int, error) {
			time.Sleep(opts.FlushDelay)
			return pending, nil
		}
		return l
	}
	scfg := esm.ServerConfig{BufferPages: 64, CommitWindow: time.Millisecond}
	srv, err := esm.NewServer(disk.NewMemVolume(), mkLog(), scfg)
	if err != nil {
		return 0, 0, 0, err
	}
	var tr esm.Transport = esm.NewInProcTransport(srv)
	var leader *repl.Node
	if replicated {
		cfg := func(id string) repl.Config {
			return repl.Config{
				ID:                id,
				Quorum:            2,
				HeartbeatInterval: 50 * time.Millisecond,
				QuorumTimeout:     10 * time.Second,
				Server:            esm.ServerConfig{BufferPages: 64},
			}
		}
		leader = repl.NewLeader(srv, cfg("n1"))
		followers := []*repl.Node{
			repl.NewFollower(disk.NewMemVolume(), mkLog(), cfg("n2")),
			repl.NewFollower(disk.NewMemVolume(), mkLog(), cfg("n3")),
		}
		all := append([]*repl.Node{leader}, followers...)
		for i, a := range all {
			for j, b := range all {
				if i != j {
					a.AddPeer(b.ID(), "", b.Transport())
				}
			}
		}
		defer func() {
			for _, n := range all {
				_ = n.Close()
			}
		}()
		tr = leader.Transport()
	}

	errs := make(chan error, sessions)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		go func(s int) {
			c := esm.NewClient(tr, esm.ClientConfig{BufferPages: 8})
			name := fmt.Sprintf("bench.c%d", s)
			for t := 0; t < opts.TxnsPerSession; t++ {
				if err := c.Begin(); err != nil {
					errs <- err
					return
				}
				if _, err := c.Counter(name, 1); err != nil {
					errs <- err
					return
				}
				if err := c.Commit(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(s)
	}
	for s := 0; s < sessions; s++ {
		if e := <-errs; e != nil && err == nil {
			err = e
		}
	}
	if err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start).Seconds()
	ops := float64(sessions * opts.TxnsPerSession)
	if leader != nil {
		st := leader.ReplStats()
		shipRounds, quorumWaitNs = st.ShipRounds, st.QuorumWaitNs
	}
	return ops / elapsed, shipRounds, quorumWaitNs, nil
}
