package harness

import (
	"bytes"
	"strings"
	"testing"

	"quickstore/internal/oo7"
	"quickstore/internal/sim"
)

// TestPrefetchColdT1 is the acceptance gate for the prefetch extension: on
// the paper's small database, enabling the mapping-object prefetcher must
// cut the cold T1 simulated time by at least 25% without changing the
// traversal result or the hot (in-memory) time.
func TestPrefetchColdT1(t *testing.T) {
	env, err := Build(SysQS, oo7.Small())
	if err != nil {
		t.Fatal(err)
	}
	ops := Ops(oo7.Small())
	off, err := env.RunColdHot(ops["T1"], SessionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := env.RunColdHot(ops["T1"], SessionOpts{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}

	if on.Result != off.Result {
		t.Fatalf("prefetch changed the traversal result: off=%d on=%d", off.Result, on.Result)
	}
	if gain := 1 - on.ColdMs/off.ColdMs; gain < 0.25 {
		t.Errorf("cold T1 gain = %.1f%% (off=%.0fms on=%.0fms), want >= 25%%",
			gain*100, off.ColdMs, on.ColdMs)
	}
	// Hot runs touch no non-resident pages, so the prefetcher must be
	// completely inert there. The deltas are differences of accumulated
	// floats, so allow rounding noise.
	if diff := on.HotMs - off.HotMs; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("hot T1 changed: off=%.6fms on=%.6fms", off.HotMs, on.HotMs)
	}
	if n := on.HotDelta.Count(sim.CtrPrefetchIssued); n != 0 {
		t.Errorf("hot run issued %d prefetches, want 0", n)
	}

	// The counters must tell a coherent story: hits happened, every hit was
	// a page previously issued, and hits replaced synchronous reads.
	cd := on.ColdDelta
	hits := cd.Count(sim.CtrPrefetchHit)
	issued := cd.Count(sim.CtrPrefetchIssued)
	if hits == 0 {
		t.Error("prefetch-on cold run recorded no hits")
	}
	if hits > issued {
		t.Errorf("hits (%d) exceed issued (%d)", hits, issued)
	}
	if on.ColdIOs() >= off.ColdIOs() {
		t.Errorf("prefetch did not reduce synchronous reads: off=%d on=%d",
			off.ColdIOs(), on.ColdIOs())
	}
	if got := off.ColdIOs() - hits; on.ColdIOs() > got {
		t.Errorf("synchronous reads %d, want at most off-hits = %d", on.ColdIOs(), got)
	}
}

// TestPrefetchOffIsInert checks the determinism contract: with the
// prefetcher disabled (the default), a session's counters contain no
// prefetch activity at all, so every paper-table experiment is untouched.
func TestPrefetchOffIsInert(t *testing.T) {
	env, err := Build(SysQS, oo7.SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	m, err := env.RunColdHot(Ops(oo7.SmallTest())["T1"], SessionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []sim.Counter{
		sim.CtrPrefetchIssued, sim.CtrPrefetchBatch, sim.CtrPrefetchHit,
		sim.CtrPrefetchWasted, sim.CtrPrefetchDiskRead,
	} {
		if n := m.ColdDelta.Count(c) + m.HotDelta.Count(c); n != 0 {
			t.Errorf("%v = %d with prefetch off, want 0", c, n)
		}
	}
}

// TestPrefetchExperimentRuns exercises the "-exp prefetch" report end to end
// on the reduced configuration.
func TestPrefetchExperimentRuns(t *testing.T) {
	var out bytes.Buffer
	s := tinySuite(&out)
	s.RunMedium = false
	if err := s.Run([]string{"prefetch"}); err != nil {
		t.Fatalf("prefetch experiment failed: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "prefetch off vs on") {
		t.Errorf("missing report title in output:\n%s", text)
	}
	if !strings.Contains(text, "pf.hit") {
		t.Errorf("missing prefetch counters in output:\n%s", text)
	}
}
