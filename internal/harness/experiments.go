package harness

import (
	"fmt"
	"io"
	"sort"

	"quickstore/internal/core"
	"quickstore/internal/oo7"
	"quickstore/internal/sim"
)

// ExperimentNames lists every reproducible table and figure in the paper's
// evaluation, in presentation order.
var ExperimentNames = []string{
	"table2",    // database sizes
	"fig8",      // small cold traversals (+ Table 3 I/Os)
	"fig9",      // small cold queries (+ Table 4 I/Os)
	"table5",    // average faulting cost
	"table6",    // detailed QS faulting breakdown
	"fig10",     // small update traversals, response times
	"fig11",     // small update traversals, commit breakdown
	"fig12",     // small hot traversals
	"fig13",     // small hot queries
	"table7",    // T1 hot CPU profile
	"fig14",     // medium cold traversals (+ Table 8 I/Os)
	"fig15",     // medium cold queries (+ Table 9 I/Os)
	"fig16",     // medium update traversals
	"fig17",     // relocation sweep (QS-CR vs QS-OR)
	"ablations", // design-choice ablations (clock policy, diff logging)
	"extras",    // the OO7 operations the paper omitted (Q6-Q8, insert/delete)
}

// Verify ("-exp verify") is intentionally not part of "all": its assertions
// hold at full benchmark scale (oo7.Small and up), not at the reduced test
// configurations the suite also supports. Likewise "prefetch" is not part of
// "all": it measures the prefetch extension (off by default), so keeping it
// out preserves byte-identical "-exp all" output against the paper baseline.
// "concurrency" (also reachable as "oo7bench -clients N") is excluded for the
// same reason plus one more: it measures wall-clock time, so its numbers are
// inherently nondeterministic.

// Suite runs experiments, caching generated databases and measurements that
// several tables share.
type Suite struct {
	Out       io.Writer
	Small     oo7.Params
	Medium    oo7.Params
	RunMedium bool

	smallEnvs  map[System]*Env
	mediumEnvs map[System]*Env
	smallRO    map[string]map[System]Measurement // op -> sys -> measurement
	mediumRO   map[string]map[System]Measurement
	smallUpd   map[string]map[System]Measurement
	mediumUpd  map[string]map[System]Measurement

	tables []Table // every table emitted since the last TakeTables
}

// NewSuite builds a suite writing reports to w. When medium is false the
// medium-database experiments print a skip notice instead of running.
func NewSuite(w io.Writer, medium bool) *Suite {
	return &Suite{
		Out:       w,
		Small:     oo7.Small(),
		Medium:    oo7.Medium(),
		RunMedium: medium,
	}
}

func (s *Suite) logf(format string, args ...any) {
	fmt.Fprintf(s.Out, format+"\n", args...)
}

// emit prints a finished table and records it for structured consumers
// (cmd/oo7bench -json).
func (s *Suite) emit(t Table) {
	s.logf("%s", t.String())
	s.tables = append(s.tables, t)
}

// TakeTables drains the tables emitted since the previous call. Callers use
// it to attribute tables to the experiment that just ran.
func (s *Suite) TakeTables() []Table {
	out := s.tables
	s.tables = nil
	return out
}

func (s *Suite) envs(medium bool) (map[System]*Env, error) {
	cache := &s.smallEnvs
	p := s.Small
	label := "small"
	if medium {
		cache = &s.mediumEnvs
		p = s.Medium
		label = "medium"
	}
	if *cache != nil {
		return *cache, nil
	}
	m := map[System]*Env{}
	for _, sys := range AllSystems {
		s.logf("# generating %s OO7 database for %v ...", label, sys)
		e, err := Build(sys, p)
		if err != nil {
			return nil, err
		}
		m[sys] = e
	}
	*cache = m
	return m, nil
}

// readOnly returns (building if needed) the cold+hot measurements of the
// read-only operations on every system.
func (s *Suite) readOnly(medium bool) (map[string]map[System]Measurement, error) {
	cache := &s.smallRO
	if medium {
		cache = &s.mediumRO
	}
	if *cache != nil {
		return *cache, nil
	}
	envs, err := s.envs(medium)
	if err != nil {
		return nil, err
	}
	p := s.Small
	if medium {
		p = s.Medium
	}
	ops := Ops(p)
	names := []string{"T1", "T6", "T7", "T8", "T9", "Q1", "Q2", "Q3", "Q4", "Q5"}
	out := map[string]map[System]Measurement{}
	for _, name := range names {
		out[name] = map[System]Measurement{}
		for _, sys := range AllSystems {
			m, err := envs[sys].RunColdHot(ops[name], SessionOpts{})
			if err != nil {
				return nil, err
			}
			out[name][sys] = m
		}
		// Cross-system agreement is a correctness gate, not just a report.
		if out[name][SysQS].Result != out[name][SysE].Result ||
			out[name][SysQS].Result != out[name][SysQSB].Result {
			return nil, fmt.Errorf("harness: %s results disagree: QS=%d E=%d QS-B=%d",
				name, out[name][SysQS].Result, out[name][SysE].Result, out[name][SysQSB].Result)
		}
	}
	*cache = out
	return out, nil
}

// Run executes the named experiments ("all" expands to every one).
func (s *Suite) Run(names []string) error {
	if len(names) == 1 && names[0] == "all" {
		names = ExperimentNames
	}
	for _, name := range names {
		fn, ok := s.dispatch()[name]
		if !ok {
			return fmt.Errorf("harness: unknown experiment %q (have %v)", name, ExperimentNames)
		}
		if err := fn(); err != nil {
			return fmt.Errorf("harness: %s: %w", name, err)
		}
	}
	return nil
}

func (s *Suite) dispatch() map[string]func() error {
	return map[string]func() error{
		"table2": s.Table2,
		"fig8": func() error {
			return s.coldOps(false, []string{"T1", "T6", "T7", "T8", "T9"}, "Figure 8 / Table 3: OO7 traversal cold times, small database")
		},
		"fig9": func() error {
			return s.coldOps(false, []string{"Q1", "Q2", "Q3", "Q4", "Q5"}, "Figure 9 / Table 4: OO7 query cold times, small database")
		},
		"table5": s.Table5,
		"table6": s.Table6,
		"fig10":  func() error { return s.updates(false) },
		"fig11":  s.commitBreakdown,
		"fig12": func() error {
			return s.hotOps(false, []string{"T1", "T6", "T7", "T8", "T9"}, "Figure 12: traversal hot times, small database")
		},
		"fig13": func() error {
			return s.hotOps(false, []string{"Q1", "Q2", "Q3", "Q4", "Q5"}, "Figure 13: query hot times, small database")
		},
		"table7": s.Table7,
		"fig14": func() error {
			return s.mediumGate(func() error {
				return s.coldOps(true, []string{"T1", "T6", "T7", "T8", "T9"}, "Figure 14 / Table 8: traversal cold times, medium database")
			})
		},
		"fig15": func() error {
			return s.mediumGate(func() error {
				return s.coldOps(true, []string{"Q1", "Q2", "Q3", "Q4", "Q5"}, "Figure 15 / Table 9: query cold times, medium database")
			})
		},
		"fig16":     func() error { return s.mediumGate(func() error { return s.updates(true) }) },
		"fig17":     s.Fig17,
		"ablations": s.Ablations,
		"extras":    s.Extras,
		"verify":    s.Verify,
		"prefetch":  s.PrefetchExp,
		"concurrency": func() error { return s.ConcurrencyExp(ConcurrencyOpts{}) },
	}
}

func (s *Suite) mediumGate(fn func() error) error {
	if !s.RunMedium {
		s.logf("# medium-database experiment skipped (enable with -medium)")
		return nil
	}
	return fn()
}

// Table2 reports the database sizes.
func (s *Suite) Table2() error {
	t := Table{
		Title:   "Table 2: Database sizes (megabytes)",
		Columns: []string{"system", "small"},
	}
	if s.RunMedium {
		t.Columns = append(t.Columns, "medium")
	}
	small, err := s.envs(false)
	if err != nil {
		return err
	}
	var medium map[System]*Env
	if s.RunMedium {
		if medium, err = s.envs(true); err != nil {
			return err
		}
	}
	for _, sys := range []System{SysQS, SysE, SysQSB} {
		row := []string{sys.String(), mb(small[sys].SizeMB())}
		if s.RunMedium {
			row = append(row, mb(medium[sys].SizeMB()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("QS/E small size ratio = %.2f (paper: 0.63)",
			ratio(small[SysQS].SizeMB(), small[SysE].SizeMB())))
	s.emit(t)
	return nil
}

// coldOps prints cold response times and client I/Os for a set of ops.
func (s *Suite) coldOps(medium bool, names []string, title string) error {
	ro, err := s.readOnly(medium)
	if err != nil {
		return err
	}
	t := Table{Title: title,
		Columns: []string{"op", "QS ms", "E ms", "QS-B ms", "QS IOs", "E IOs", "QS-B IOs", "result"}}
	for _, name := range names {
		m := ro[name]
		t.AddRow(name,
			ms(m[SysQS].ColdMs), ms(m[SysE].ColdMs), ms(m[SysQSB].ColdMs),
			d(m[SysQS].ColdIOs()), d(m[SysE].ColdIOs()), d(m[SysQSB].ColdIOs()),
			d(int64(m[SysQS].Result)))
	}
	s.emit(t)
	return nil
}

// hotOps prints hot response times.
func (s *Suite) hotOps(medium bool, names []string, title string) error {
	ro, err := s.readOnly(medium)
	if err != nil {
		return err
	}
	t := Table{Title: title, Columns: []string{"op", "QS ms", "E ms", "QS-B ms", "E/QS"}}
	for _, name := range names {
		m := ro[name]
		r := "-"
		if m[SysQS].HotMs >= 0.1 {
			r = fmt.Sprintf("%.1fx", ratio(m[SysE].HotMs, m[SysQS].HotMs))
		}
		t.AddRow(name, f1(m[SysQS].HotMs), f1(m[SysE].HotMs), f1(m[SysQSB].HotMs), r)
	}
	s.emit(t)
	return nil
}

// Table5 reports the average cost per fault, computed the paper's way:
// (cold time - hot time) / faults.
func (s *Suite) Table5() error {
	ro, err := s.readOnly(false)
	if err != nil {
		return err
	}
	t := Table{Title: "Table 5: Average faulting cost (ms per fault)",
		Columns: []string{"system", "T1", "T6"}}
	for _, sys := range []System{SysQS, SysE, SysQSB} {
		row := []string{sys.String()}
		for _, op := range []string{"T1", "T6"} {
			m := ro[op][sys]
			faults := m.ColdDelta.Count(sim.CtrPageFaultTrap)
			if sys == SysE {
				faults = m.ColdDelta.Count(sim.CtrClientRead)
			}
			if faults == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", (m.ColdMs-m.HotMs)/float64(faults)))
		}
		t.AddRow(row...)
	}
	s.emit(t)
	return nil
}

// Table6 decomposes QuickStore's average fault time for T1 and T6.
func (s *Suite) Table6() error {
	ro, err := s.readOnly(false)
	if err != nil {
		return err
	}
	t := Table{Title: "Table 6: Detailed QS faulting times (ms per fault)",
		Columns: []string{"component", "T1", "T6"}}
	type comp struct {
		name string
		get  func(dl sim.Snapshot) float64
	}
	comps := []comp{
		{"min faults", func(dl sim.Snapshot) float64 { return dl.Micros(sim.CtrMinFault) }},
		{"page fault", func(dl sim.Snapshot) float64 { return dl.Micros(sim.CtrPageFaultTrap) }},
		{"misc. cpu overhead", func(dl sim.Snapshot) float64 { return dl.Micros(sim.CtrMiscFaultCPU) }},
		{"data I/O", func(dl sim.Snapshot) float64 { d, _, _ := ioTimeSplit(dl); return d }},
		{"map I/O", func(dl sim.Snapshot) float64 { _, m, bm := ioTimeSplit(dl); return m + bm }},
		{"swizzling", func(dl sim.Snapshot) float64 {
			return dl.Micros(sim.CtrMapEntry) + dl.Micros(sim.CtrSwizzledPtr)
		}},
		{"mmap", func(dl sim.Snapshot) float64 { return dl.Micros(sim.CtrMmapCall) }},
	}
	faults := map[string]float64{}
	for _, op := range []string{"T1", "T6"} {
		faults[op] = float64(ro[op][SysQS].ColdDelta.Count(sim.CtrPageFaultTrap))
	}
	totals := map[string]float64{}
	for _, c := range comps {
		row := []string{c.name}
		for _, op := range []string{"T1", "T6"} {
			dl := ro[op][SysQS].ColdDelta
			v := c.get(dl) / 1000 / faults[op]
			totals[op] += v
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(row...)
	}
	t.AddRow("total", fmt.Sprintf("%.2f", totals["T1"]), fmt.Sprintf("%.2f", totals["T6"]))
	s.emit(t)
	return nil
}

// updateMeasurements runs (and caches) the T2/T3 traversals on every system.
func (s *Suite) updateMeasurements(medium bool) (map[string]map[System]Measurement, error) {
	cache := &s.smallUpd
	p := s.Small
	if medium {
		cache = &s.mediumUpd
		p = s.Medium
	}
	if *cache != nil {
		return *cache, nil
	}
	envs, err := s.envs(medium)
	if err != nil {
		return nil, err
	}
	ops := Ops(p)
	out := map[string]map[System]Measurement{}
	for _, name := range []string{"T2A", "T2B", "T2C", "T3A", "T3B", "T3C"} {
		out[name] = map[System]Measurement{}
		for _, sys := range AllSystems {
			m, err := envs[sys].RunColdHot(ops[name], SessionOpts{})
			if err != nil {
				return nil, err
			}
			out[name][sys] = m
		}
		if out[name][SysQS].Result != out[name][SysE].Result ||
			out[name][SysQS].Result != out[name][SysQSB].Result {
			return nil, fmt.Errorf("harness: %s update counts disagree: QS=%d E=%d QS-B=%d",
				name, out[name][SysQS].Result, out[name][SysE].Result, out[name][SysQSB].Result)
		}
	}
	*cache = out
	return out, nil
}

// updates prints Figure 10 (small) or 16 (medium): update-traversal
// response times.
func (s *Suite) updates(medium bool) error {
	upd, err := s.updateMeasurements(medium)
	if err != nil {
		return err
	}
	title := "Figure 10: T2 and T3 response times, small database"
	if medium {
		title = "Figure 16: T2 and T3 response times, medium database"
	}
	resp := Table{Title: title,
		Columns: []string{"op", "QS s", "E s", "QS-B s", "updates"}}
	for _, name := range []string{"T2A", "T2B", "T2C", "T3A", "T3B", "T3C"} {
		m := upd[name]
		resp.AddRow(name, sec(m[SysQS].ColdMs), sec(m[SysE].ColdMs), sec(m[SysQSB].ColdMs),
			d(int64(m[SysQS].Result)))
	}
	s.emit(resp)
	return nil
}

// commitBreakdown prints Figure 11: the commit-phase decomposition of the
// small update traversals.
func (s *Suite) commitBreakdown() error {
	upd, err := s.updateMeasurements(false)
	if err != nil {
		return err
	}
	commit := Table{Title: "Figure 11: commit-time breakdown, small database (seconds)",
		Columns: []string{"op", "sys", "diff", "log", "map", "flush"}}
	for _, name := range []string{"T2A", "T2B", "T2C", "T3A", "T3B", "T3C"} {
		for _, sys := range AllSystems {
			m := upd[name][sys]
			diff, logGen, mapUpd, flush := commitPhaseMs(m.ColdDelta)
			commit.AddRow(name, sys.String(), sec(diff), sec(logGen), sec(mapUpd), sec(flush))
		}
	}
	s.emit(commit)
	return nil
}

// Table7 decomposes the hot T1 CPU time into the paper's buckets.
func (s *Suite) Table7() error {
	ro, err := s.readOnly(false)
	if err != nil {
		return err
	}
	t := Table{Title: "Table 7: T1 hot traversal CPU profile (percent of time)",
		Columns: []string{"bucket", "QS", "E"}}
	type bucket struct {
		name string
		get  func(dl sim.Snapshot) float64
	}
	buckets := []bucket{
		{"EPVM 3.0", func(dl sim.Snapshot) float64 {
			return dl.Micros(sim.CtrInterpCall) + dl.Micros(sim.CtrResidencyCheck) + dl.Micros(sim.CtrBigPtrDeref)
		}},
		{"malloc (iterators)", func(dl sim.Snapshot) float64 { return dl.Micros(sim.CtrIterAlloc) }},
		{"part set", func(dl sim.Snapshot) float64 { return dl.Micros(sim.CtrPartSetOp) }},
		{"traverse", func(dl sim.Snapshot) float64 {
			return dl.Micros(sim.CtrDeref) + dl.Micros(sim.CtrFieldRead) + dl.Micros(sim.CtrFieldWrite)
		}},
	}
	for _, b := range buckets {
		row := []string{b.name}
		for _, sys := range []System{SysQS, SysE} {
			dl := ro["T1"][sys].HotDelta
			total := dl.ElapsedMicros()
			row = append(row, pct(ratio(b.get(dl), total)))
		}
		t.AddRow(row...)
	}
	s.emit(t)
	return nil
}

// Fig17 sweeps the relocation percentage for QS-CR and QS-OR on a freshly
// built small database per mode.
func (s *Suite) Fig17() error {
	fractions := []float64{0, 0.05, 0.20, 0.50, 1.00}
	t := Table{Title: "Figure 17: T1 cold time vs % of relocated pages, small database",
		Columns: []string{"relocated", "QS-CR s", "QS-OR s", "CR swizzled", "OR swizzled"}}
	ops := Ops(s.Small)
	for _, frac := range fractions {
		row := []string{pct(frac)}
		swizzled := map[core.RelocationMode]int64{}
		for _, mode := range []core.RelocationMode{core.RelocCR, core.RelocOR} {
			// Fresh database per point: OR commits mapping changes, which
			// would contaminate later points.
			env, err := Build(SysQS, s.Small)
			if err != nil {
				return err
			}
			m, err := env.RunColdHot(ops["T1"], SessionOpts{
				Relocation:       mode,
				RelocateFraction: frac,
				RelocSeed:        int64(frac*100) + 1,
			})
			if err != nil {
				return err
			}
			row = append(row, sec(m.ColdMs))
			swizzled[mode] = m.ColdDelta.Count(sim.CtrSwizzledPtr)
		}
		row = append(row, d(swizzled[core.RelocCR]), d(swizzled[core.RelocOR]))
		t.AddRow(row...)
	}
	s.emit(t)
	return nil
}

// SortedOpNames is a helper for stable iteration in reports and tests.
func SortedOpNames(m map[string]Op) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ablations runs the design-choice ablations DESIGN.md §7 calls out:
// the simplified clock vs the traditional reference-bit clock under buffer
// pressure, and page diffing vs whole-page logging on a sparse update
// traversal.
func (s *Suite) Ablations() error {
	p := s.Small

	// Ablation 1: buffer replacement policy under paging. A small client
	// pool forces replacement during T1; the simplified clock prefers
	// access-disabled frames, while the traditional clock cannot see raw
	// pointer dereferences at all.
	clockT := Table{Title: "Ablation: simplified clock vs traditional clock (QS, T1, 256-frame client pool)",
		Columns: []string{"policy", "cold s", "hot s", "client reads (hot)"}}
	ops := Ops(p)
	for _, traditional := range []bool{false, true} {
		env, err := Build(SysQS, p)
		if err != nil {
			return err
		}
		m, err := env.RunColdHot(ops["T1"], SessionOpts{
			BufferPages:      256,
			TraditionalClock: traditional,
		})
		if err != nil {
			return err
		}
		name := "simplified (QS)"
		if traditional {
			name = "traditional"
		}
		clockT.AddRow(name, sec(m.ColdMs), sec(m.HotMs), d(m.HotDelta.Count(sim.CtrClientRead)))
	}
	s.emit(clockT)

	// Ablation 2: log generation. Diffing emits minimal records; the
	// whole-page alternative (the Hoski93b-style comparison) logs every
	// modified page in full.
	logT := Table{Title: "Ablation: page diffing vs whole-page logging (QS, T2A)",
		Columns: []string{"scheme", "response s", "log records", "log KB"}}
	for _, whole := range []bool{false, true} {
		env, err := Build(SysQS, p)
		if err != nil {
			return err
		}
		m, err := env.RunColdHot(ops["T2A"], SessionOpts{WholeObjectLogging: whole})
		if err != nil {
			return err
		}
		name := "diffing (QS)"
		if whole {
			name = "whole page"
		}
		logT.AddRow(name, sec(m.ColdMs),
			d(m.ColdDelta.Count(sim.CtrLogRecord)),
			d(m.ColdDelta.Count(sim.CtrLogByte)/1024))
	}
	s.emit(logT)
	return nil
}

// Extras measures the OO7 operations the paper's study omitted: the
// remaining queries and the structural modifications (which exercise object
// deletion). Fresh databases are built because the modifications mutate
// structure.
func (s *Suite) Extras() error {
	t := Table{Title: "Extras (beyond the paper's subset): remaining OO7 operations, small database",
		Columns: []string{"op", "QS ms", "E ms", "QS-B ms", "result"}}
	type opFn struct {
		name string
		fn   func(oo7.DB) (int, error)
	}
	p := s.Small
	ops := []opFn{
		{"Q6", oo7.Q6},
		{"Q7", func(db oo7.DB) (int, error) { return oo7.Q7(db, p) }},
		{"Q8", func(db oo7.DB) (int, error) { return oo7.Q8(db, p, 211) }},
		{"Insert", func(db oo7.DB) (int, error) { return oo7.StructuralInsert(db, p, 5, 223) }},
		{"Delete", func(db oo7.DB) (int, error) { return oo7.StructuralDelete(db) }},
	}
	envs := map[System]*Env{}
	for _, sys := range AllSystems {
		env, err := Build(sys, p)
		if err != nil {
			return err
		}
		envs[sys] = env
	}
	for _, op := range ops {
		row := []string{op.name}
		var result int
		for _, sys := range AllSystems {
			if err := envs[sys].Cold(); err != nil {
				return err
			}
			db, err := envs[sys].Session(SessionOpts{})
			if err != nil {
				return err
			}
			before := envs[sys].Clock.Snapshot()
			n, err := op.fn(db)
			if err != nil {
				return fmt.Errorf("extras %s on %v: %w", op.name, sys, err)
			}
			d := envs[sys].Clock.Snapshot().Sub(before)
			row = append(row, ms(d.ElapsedMicros()/1000))
			result = n
		}
		t.AddRow(append(row, d(int64(result)))...)
	}
	s.emit(t)
	return nil
}
