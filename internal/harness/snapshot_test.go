package harness

import (
	"testing"
	"time"
)

// shortSnapOpts shrinks the snapshot sweep so -race CI runs it in seconds
// while keeping real contention: writers take Exclusive page locks on the
// same working set the readers sweep.
func shortSnapOpts(maxSessions int) SnapshotBenchOpts {
	return SnapshotBenchOpts{
		MaxSessions:    maxSessions,
		TxnsPerSession: 6,
		ReadsPerTxn:    8,
		Writers:        2,
		SharedObjects:  128,
		ServerPool:     32,
		ReadDelay:      80 * time.Microsecond,
		FlushDelay:     160 * time.Microsecond,
	}
}

// TestSnapshotBenchLockFree is the wire-level acceptance check for the MVCC
// read path: across the whole sweep, the snapshot runs must register ZERO
// reader-attributable lock-manager grants, while the 2PL baseline registers
// exactly one per read. Both modes must complete every read and keep the
// writers committing.
func TestSnapshotBenchLockFree(t *testing.T) {
	o := shortSnapOpts(4)
	pts, err := RunSnapshotBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // 1, 2, 4
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, want := range []int{1, 2, 4} {
		p := pts[i]
		if p.Sessions != want {
			t.Fatalf("point %d: sessions = %d, want %d", i, p.Sessions, want)
		}
		wantOps := int64(p.Sessions * o.TxnsPerSession * o.ReadsPerTxn)
		if p.SnapOps != wantOps || p.LockedOps != wantOps {
			t.Errorf("%d sessions: ops snap=%d locked=%d, want %d",
				p.Sessions, p.SnapOps, p.LockedOps, wantOps)
		}
		if p.SnapReaderLockGrants != 0 {
			t.Errorf("%d sessions: snapshot readers took %d lock grants, want 0",
				p.Sessions, p.SnapReaderLockGrants)
		}
		// Re-locking a page already held by the transaction is a no-op
		// grant-wise, so the locked baseline lands at one grant per
		// DISTINCT page per transaction: positive, bounded by the reads.
		if p.LockedReaderLockGrants <= 0 || p.LockedReaderLockGrants > wantOps {
			t.Errorf("%d sessions: locked readers took %d lock grants, want (0, %d]",
				p.Sessions, p.LockedReaderLockGrants, wantOps)
		}
		if p.SnapWriterCommits <= 0 || p.LockedWriterCommits <= 0 {
			t.Errorf("%d sessions: writers idle (snap %d, locked %d commits)",
				p.Sessions, p.SnapWriterCommits, p.LockedWriterCommits)
		}
		if p.SnapOpsPerSec <= 0 || p.LockedOpsPerSec <= 0 {
			t.Errorf("%d sessions: degenerate timing snap=%v locked=%v",
				p.Sessions, p.SnapOpsPerSec, p.LockedOpsPerSec)
		}
	}
	top := pts[len(pts)-1]
	t.Logf("snapshot sweep: %d sessions %.0f ops/sec vs locked %.0f (%.1fx), locked waits %d",
		top.Sessions, top.SnapOpsPerSec, top.LockedOpsPerSec, top.Speedup, top.LockedLockWaits)
}
