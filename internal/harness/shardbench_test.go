package harness

import (
	"testing"
	"time"
)

// A scaled-down sweep: correctness of the machinery (clean runs, zero
// unresolved transactions, sane protocol counters), not the performance
// claim — that is oo7bench -shards' acceptance gate.
func TestShardBenchSmoke(t *testing.T) {
	pts, err := RunShardBench(ShardBenchOpts{
		MaxShards:      2,
		Sessions:       4,
		TxnsPerSession: 12,
		CrossEvery:     3,
		ObjsPerSession: 2,
		ServiceTime:    5 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Txns != 4*12 {
			t.Errorf("shards=%d: %d txns, want %d", p.Shards, p.Txns, 4*12)
		}
		if p.UnresolvedOrInDoubt != 0 {
			t.Errorf("shards=%d: %d unresolved transactions", p.Shards, p.UnresolvedOrInDoubt)
		}
	}
	if pts[0].CrossCommits != 0 || pts[0].Prepares != 0 {
		t.Errorf("1-shard point ran 2PC: %+v", pts[0])
	}
	// 4 sessions x 12 txns, every 3rd cross-shard on 2 shards.
	if pts[1].CrossCommits != 4*4 {
		t.Errorf("2-shard cross commits = %d, want %d", pts[1].CrossCommits, 4*4)
	}
	if pts[1].Prepares != 2*pts[1].CrossCommits {
		t.Errorf("prepares = %d for %d cross commits", pts[1].Prepares, pts[1].CrossCommits)
	}
}
