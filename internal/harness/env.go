// Package harness builds OO7 databases for each system under test and runs
// the paper's experiments, producing the rows of every table and figure in
// the evaluation section (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured results).
package harness

import (
	"fmt"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/epvm"
	"quickstore/internal/esm"
	"quickstore/internal/oo7"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// System identifies one of the paper's systems.
type System int

// Systems under test.
const (
	SysQS System = iota
	SysE
	SysQSB
)

// String names the system as in the paper.
func (s System) String() string { return [...]string{"QS", "E", "QS-B"}[s] }

// AllSystems lists the three systems of the main experiments.
var AllSystems = []System{SysQS, SysE, SysQSB}

// SessionOpts tunes one benchmark session (one simulated client process).
type SessionOpts struct {
	BufferPages int // client pool; 0 = the paper's 1536 (12MB)
	// QuickStore relocation experiment knobs (Figure 17).
	Relocation       core.RelocationMode
	RelocateFraction float64
	RelocSeed        int64
	// Ablation knobs (DESIGN.md §7).
	TraditionalClock   bool
	WholeObjectLogging bool
	// Prefetch enables QuickStore's mapping-object-driven prefetcher
	// (internal/prefetch). Off in every paper-table experiment.
	Prefetch bool
}

// Env is one generated OO7 database for one system: a server over an
// in-memory volume plus the generation parameters.
type Env struct {
	Sys    System
	Params oo7.Params
	Clock  *sim.Clock
	Srv    *esm.Server
}

// Build generates the OO7 database for sys with params p (bulk-load mode)
// and checkpoints it.
func Build(sys System, p oo7.Params) (*Env, error) {
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{Clock: clock})
	if err != nil {
		return nil, err
	}
	e := &Env{Sys: sys, Params: p, Clock: clock, Srv: srv}
	gen, err := e.open(SessionOpts{BufferPages: esm.DefaultClientBufferPages}, true)
	if err != nil {
		return nil, err
	}
	if err := oo7.Generate(gen, p); err != nil {
		return nil, fmt.Errorf("harness: generate %v: %w", sys, err)
	}
	if err := srv.Checkpoint(); err != nil {
		return nil, err
	}
	return e, nil
}

// open starts a fresh client session against the environment's server.
func (e *Env) open(opts SessionOpts, bulk bool) (oo7.DB, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = esm.DefaultClientBufferPages
	}
	c := esm.NewClient(esm.NewInProcTransport(e.Srv),
		esm.ClientConfig{BufferPages: opts.BufferPages, Clock: e.Clock})
	switch e.Sys {
	case SysQS, SysQSB:
		cfg := core.Config{
			BulkLoad:           bulk,
			Relocation:         opts.Relocation,
			RelocateFraction:   opts.RelocateFraction,
			RelocSeed:          opts.RelocSeed,
			TraditionalClock:   opts.TraditionalClock,
			WholeObjectLogging: opts.WholeObjectLogging,
			Prefetch:           opts.Prefetch,
		}
		var s *core.Store
		var err error
		if bulk {
			s, err = core.New(c, cfg)
		} else {
			s, err = core.Open(c, cfg)
		}
		if err != nil {
			return nil, err
		}
		return oo7.NewQS(s, e.Sys == SysQSB), nil
	default:
		var s *epvm.Store
		var err error
		if bulk {
			s, err = epvm.New(c, epvm.Config{BulkLoad: true})
		} else {
			s, err = epvm.Open(c, epvm.Config{})
		}
		if err != nil {
			return nil, err
		}
		return oo7.NewE(s), nil
	}
}

// Session opens a fresh benchmark session (runtime mode, full logging).
func (e *Env) Session(opts SessionOpts) (oo7.DB, error) {
	return e.open(opts, false)
}

// Cold drops the server caches so the next session's reads hit the disk.
func (e *Env) Cold() error { return e.Srv.DropCaches() }

// SizeMB reports the database size in megabytes (allocated volume pages).
func (e *Env) SizeMB() float64 {
	return float64(e.Srv.Volume().AllocatedPages()) * disk.PageSize / (1 << 20)
}

// Op is one benchmark operation bound to its parameters.
type Op struct {
	Name string
	Fn   func(oo7.DB) (int, error)
}

// Ops builds the standard operation list for parameters p. Seeds are fixed
// so every system runs the identical access pattern.
func Ops(p oo7.Params) map[string]Op {
	m := map[string]Op{
		"T1":  {Name: "T1", Fn: oo7.T1},
		"T6":  {Name: "T6", Fn: oo7.T6},
		"T7":  {Name: "T7", Fn: func(db oo7.DB) (int, error) { return oo7.T7(db, p, 101) }},
		"T8":  {Name: "T8", Fn: oo7.T8},
		"T9":  {Name: "T9", Fn: oo7.T9},
		"T2A": {Name: "T2A", Fn: func(db oo7.DB) (int, error) { return oo7.T2(db, oo7.VariantA) }},
		"T2B": {Name: "T2B", Fn: func(db oo7.DB) (int, error) { return oo7.T2(db, oo7.VariantB) }},
		"T2C": {Name: "T2C", Fn: func(db oo7.DB) (int, error) { return oo7.T2(db, oo7.VariantC) }},
		"T3A": {Name: "T3A", Fn: func(db oo7.DB) (int, error) { return oo7.T3(db, oo7.VariantA) }},
		"T3B": {Name: "T3B", Fn: func(db oo7.DB) (int, error) { return oo7.T3(db, oo7.VariantB) }},
		"T3C": {Name: "T3C", Fn: func(db oo7.DB) (int, error) { return oo7.T3(db, oo7.VariantC) }},
		"Q1":  {Name: "Q1", Fn: func(db oo7.DB) (int, error) { return oo7.Q1(db, p, 103) }},
		"Q2":  {Name: "Q2", Fn: func(db oo7.DB) (int, error) { return oo7.Q2(db, p) }},
		"Q3":  {Name: "Q3", Fn: func(db oo7.DB) (int, error) { return oo7.Q3(db, p) }},
		"Q4":  {Name: "Q4", Fn: func(db oo7.DB) (int, error) { return oo7.Q4(db, p, 107) }},
		"Q5":  {Name: "Q5", Fn: oo7.Q5},
	}
	return m
}

// Measurement captures one operation run (cold and hot) on one system.
type Measurement struct {
	System    string
	Op        string
	Result    int
	ColdMs    float64
	HotMs     float64
	ColdDelta sim.Snapshot
	HotDelta  sim.Snapshot
}

// ColdIOs returns the client page-read count of the cold run (the paper's
// "client I/O requests").
func (m Measurement) ColdIOs() int64 { return m.ColdDelta.Count(sim.CtrClientRead) }

// RunColdHot opens a fresh session against a cold server, runs op once cold
// and once hot, and returns the measurement. Update operations leave the
// database modified, exactly as in the paper, where T2/T3 ran as committed
// transactions.
func (e *Env) RunColdHot(op Op, opts SessionOpts) (Measurement, error) {
	if err := e.Cold(); err != nil {
		return Measurement{}, err
	}
	db, err := e.Session(opts)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{System: e.Sys.String(), Op: op.Name}

	before := e.Clock.Snapshot()
	n, err := op.Fn(db)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s %s cold: %w", e.Sys, op.Name, err)
	}
	afterCold := e.Clock.Snapshot()
	m.Result = n
	m.ColdDelta = afterCold.Sub(before)
	m.ColdMs = m.ColdDelta.ElapsedMicros() / 1000

	if _, err := op.Fn(db); err != nil {
		return Measurement{}, fmt.Errorf("%s %s hot: %w", e.Sys, op.Name, err)
	}
	m.HotDelta = e.Clock.Snapshot().Sub(afterCold)
	m.HotMs = m.HotDelta.ElapsedMicros() / 1000
	return m, nil
}
