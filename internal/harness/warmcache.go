package harness

import (
	"fmt"
	"sync/atomic"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/wal"
)

// WarmCacheOpts configures the inter-transaction cache-coherence bench
// (DESIGN.md §18): one reader session keeps its buffer warm across
// transactions while a writer session keeps mutating a slice of the
// shared database. The coherent run revalidates the warm cache with
// LSN tokens at every Begin (not-modified answers and delta repairs);
// the baseline models the only correct alternative without coherence —
// dropping the cache and refetching every page in full each round.
type WarmCacheOpts struct {
	Objects       int // shared objects; 0 = 128
	ObjectSize    int // payload bytes per object; 0 = 1024
	Rounds        int // measured writer/reader rounds; 0 = 20
	DirtyPerRound int // objects the writer updates each round; 0 = Objects/10
}

func (o WarmCacheOpts) withDefaults() WarmCacheOpts {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&o.Objects, 128)
	def(&o.ObjectSize, 1024)
	def(&o.Rounds, 20)
	def(&o.DirtyPerRound, o.Objects/10)
	return o
}

// WarmCachePoint is one measured mode of the sharing bench.
type WarmCachePoint struct {
	Mode        string `json:"mode"`           // "coherent" or "refetch"
	Bytes       int64  `json:"bytes_on_wire"`  // reader traffic over the measured rounds
	StaleReads  int64  `json:"stale_reads"`    // values that disagreed with the oracle; must be 0
	Validates   int64  `json:"coh_validates"`  // OpValidatePages batches served
	NotModified int64  `json:"coh_not_modified"`
	Deltas      int64  `json:"coh_deltas"`
	DeltaBytes  int64  `json:"coh_delta_bytes"`
	Fulls       int64  `json:"coh_fulls"`
}

// WarmCacheResult pairs the two runs with the headline reduction.
type WarmCacheResult struct {
	Coherent  WarmCachePoint `json:"coherent"`
	Baseline  WarmCachePoint `json:"baseline"`
	Reduction float64        `json:"reduction"` // baseline bytes / coherent bytes
}

// meteredTransport counts the framed wire size of every request and
// response passing through it, so the bench reports what a real network
// would carry rather than in-process pointer passing.
type meteredTransport struct {
	tr    esm.Transport
	bytes atomic.Int64
}

func (m *meteredTransport) Call(req *esm.Request) (*esm.Response, error) {
	n := int64(esm.RequestWireSize(req))
	resp, err := m.tr.Call(req)
	if resp != nil {
		n += int64(esm.ResponseWireSize(resp))
	}
	m.bytes.Add(n)
	return resp, err
}

func (m *meteredTransport) Close() error { return m.tr.Close() }

// runWarmCacheMode runs one seeded server with a writer session and one
// metered reader session for o.Rounds rounds and returns the reader's
// wire traffic plus the server's coherence counters.
func runWarmCacheMode(o WarmCacheOpts, coherent bool) (WarmCachePoint, error) {
	pt := WarmCachePoint{Mode: "refetch"}
	if coherent {
		pt.Mode = "coherent"
	}
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 512})
	if err != nil {
		return pt, err
	}

	// Seed the shared database and the oracle of committed values.
	seed := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 64})
	if err := seed.Begin(); err != nil {
		return pt, err
	}
	fid, err := seed.CreateFile("warmcache")
	if err != nil {
		return pt, err
	}
	cl := seed.NewCluster(fid)
	oids := make([]esm.OID, o.Objects)
	oracle := make([]uint64, o.Objects)
	for i := range oids {
		id, data, err := seed.CreateObject(cl, o.ObjectSize)
		if err != nil {
			return pt, err
		}
		oracle[i] = uint64(i)
		putValue(data, oracle[i])
		oids[i] = id
	}
	if err := seed.Commit(); err != nil {
		return pt, err
	}

	// The writer is deliberately non-coherent: commits bump the server's
	// version table regardless, and this keeps the Coh* counters below
	// attributable to the reader alone.
	writer := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 64, NoCoherence: true})
	meter := &meteredTransport{tr: esm.NewInProcTransport(srv)}
	reader := esm.NewClient(meter, esm.ClientConfig{BufferPages: 256, NoCoherence: !coherent})

	readAll := func() (int64, error) {
		var stale int64
		if err := reader.Begin(); err != nil {
			return 0, err
		}
		for i, oid := range oids {
			data, _, _, err := reader.ReadObjectAt(oid)
			if err != nil {
				return 0, err
			}
			if v, ok := getValue(data); !ok || v != oracle[i] {
				stale++
			}
		}
		return stale, reader.Commit()
	}

	// Warm-up round: the initial full fetch is identical in both modes
	// and is not what the bench compares, so it runs unmetered.
	if _, err := readAll(); err != nil {
		return pt, err
	}
	before, err := writer.ServerStats()
	if err != nil {
		return pt, err
	}
	meter.bytes.Store(0)

	for r := 1; r <= o.Rounds; r++ {
		if err := writer.Begin(); err != nil {
			return pt, err
		}
		for k := 0; k < o.DirtyPerRound; k++ {
			i := (r*o.DirtyPerRound + k) % o.Objects
			data, off, frame, err := writer.ReadObjectAt(oids[i])
			if err != nil {
				return pt, err
			}
			old := append([]byte(nil), data[:12]...)
			oracle[i] = uint64(r)<<32 | uint64(i)
			putValue(data, oracle[i])
			writer.Pool().MarkDirty(frame)
			writer.LogUpdate(oids[i].Page, off, old, append([]byte(nil), data[:12]...))
		}
		if err := writer.Commit(); err != nil {
			return pt, err
		}
		if !coherent {
			// Without coherence a warm cache cannot be trusted: the only
			// correct move is to drop it and refetch everything.
			reader.Pool().DropAll()
		}
		stale, err := readAll()
		if err != nil {
			return pt, err
		}
		pt.StaleReads += stale
	}

	pt.Bytes = meter.bytes.Load()
	after, err := writer.ServerStats()
	if err != nil {
		return pt, err
	}
	pt.Validates = after.CohValidates - before.CohValidates
	pt.NotModified = after.CohNotModified - before.CohNotModified
	pt.Deltas = after.CohDeltas - before.CohDeltas
	pt.DeltaBytes = after.CohDeltaBytes - before.CohDeltaBytes
	pt.Fulls = after.CohFulls - before.CohFulls
	return pt, nil
}

// RunWarmCacheBench measures the coherent warm cache against the
// drop-and-refetch baseline on identical workloads.
func RunWarmCacheBench(opts WarmCacheOpts) (WarmCacheResult, error) {
	o := opts.withDefaults()
	var res WarmCacheResult
	var err error
	if res.Coherent, err = runWarmCacheMode(o, true); err != nil {
		return res, fmt.Errorf("coherent run: %w", err)
	}
	if res.Baseline, err = runWarmCacheMode(o, false); err != nil {
		return res, fmt.Errorf("refetch run: %w", err)
	}
	res.Reduction = ratio(float64(res.Baseline.Bytes), float64(res.Coherent.Bytes))
	return res, nil
}

// WarmExp ("oo7bench -warm") runs the warm-cache sharing bench, emits
// its table, and returns the result so the CLI can enforce the
// acceptance gate (≥5x fewer bytes on the wire, zero stale reads).
func (s *Suite) WarmExp(opts WarmCacheOpts) (WarmCacheResult, error) {
	o := opts.withDefaults()
	res, err := RunWarmCacheBench(o)
	if err != nil {
		return res, err
	}
	t := Table{
		Title: fmt.Sprintf("Warm-cache coherence: %d objects, %d/%d updated per round, %d rounds",
			o.Objects, o.DirtyPerRound, o.Objects, o.Rounds),
		Columns: []string{"mode", "KB on wire", "validates", "not-mod", "deltas", "delta KB", "fulls", "stale reads"},
	}
	for _, p := range []WarmCachePoint{res.Coherent, res.Baseline} {
		t.AddRow(
			p.Mode,
			f1(float64(p.Bytes)/1024),
			d(p.Validates),
			d(p.NotModified),
			d(p.Deltas),
			f1(float64(p.DeltaBytes)/1024),
			d(p.Fulls),
			d(p.StaleReads),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("coherent run ships %.1fx fewer bytes than drop-and-refetch", res.Reduction),
		"refetch baseline drops the reader cache every round: the only safe plan without coherence tokens",
	)
	s.emit(t)
	return res, nil
}
