package harness

import (
	"testing"
	"time"

	"quickstore/internal/faultinject"
)

// TestReplDrillQuiescentKill is the base case: no armed point, the leader
// killed after a clean workload, every acked commit on the new leader.
func TestReplDrillQuiescentKill(t *testing.T) {
	rep, err := RunReplDrill(ReplDrillOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v\ntrace: %v", rep.Violations, rep.Trace)
	}
	if !rep.ForcedKill || !rep.FailedOver {
		t.Fatalf("drill did not fail over: %+v", rep)
	}
	if rep.Committed != 12 {
		t.Fatalf("clean workload committed %d of 12", rep.Committed)
	}
}

// TestReplDrillCrashPoints kills the leader at the commit-protocol and
// replication points most likely to split an acked commit from its quorum.
// The full registry matrix runs from the CLI (qsstore crashdrill -repl).
func TestReplDrillCrashPoints(t *testing.T) {
	points := []string{
		faultinject.PtCommitBeforeFlush,
		faultinject.PtCommitAfterFlush,
		faultinject.PtReplBeforeQuorum,
		faultinject.PtReplAfterQuorum,
		faultinject.PtReplShip,
	}
	for _, pt := range points {
		for seed := int64(1); seed <= 3; seed++ {
			rep, err := RunReplDrill(ReplDrillOpts{Seed: seed, Point: pt, HitN: 2})
			if err != nil {
				t.Fatalf("%s seed %d: %v", pt, seed, err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("%s seed %d: violations %v\ntrace: %v", pt, seed, rep.Violations, rep.Trace)
			}
			if !rep.FailedOver {
				t.Fatalf("%s seed %d: no failover: %+v", pt, seed, rep)
			}
		}
	}
}

// TestReplBenchSmoke exercises the throughput comparison end to end with a
// tiny workload; the acceptance ratio is checked by the CI bench run, not
// here, where the numbers are noise.
func TestReplBenchSmoke(t *testing.T) {
	rep, err := RunReplBench(ReplBenchOpts{
		Sessions:       []int{1, 2},
		TxnsPerSession: 5,
		FlushDelay:     50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.SingleOpsPerSec <= 0 || p.QuorumOpsPerSec <= 0 {
			t.Fatalf("degenerate measurement: %+v", p)
		}
		if p.ShipRounds == 0 {
			t.Fatalf("replicated run shipped nothing: %+v", p)
		}
	}
}
