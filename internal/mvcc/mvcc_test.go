package mvcc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"quickstore/internal/wal"
)

func img(b byte) []byte { return []byte{b, b, b, b} }

// A snapshot below a commit boundary selects the version that commit
// retired; a snapshot at or above it falls through to the live page.
func TestLookupSelectsSmallestBoundaryAbove(t *testing.T) {
	s := New(-1)
	s.Pin(0) // keep everything
	s.CaptureBefore(7, 1, img(0xA))
	s.Commit(1, 10)
	s.CaptureBefore(7, 2, img(0xB))
	s.Commit(2, 20)

	cases := []struct {
		at   wal.LSN
		want byte // 0 = live page
	}{
		{5, 0xA}, {9, 0xA}, {10, 0xB}, {19, 0xB}, {20, 0}, {99, 0},
	}
	for _, c := range cases {
		got, err := s.Lookup(7, c.at)
		if err != nil {
			t.Fatalf("Lookup(7, %d): %v", c.at, err)
		}
		switch {
		case c.want == 0 && got != nil:
			t.Errorf("Lookup(7, %d) = %x, want live page", c.at, got)
		case c.want != 0 && (got == nil || got[0] != c.want):
			t.Errorf("Lookup(7, %d) = %x, want %x", c.at, got, c.want)
		}
	}
	if got, _ := s.Lookup(999, 5); got != nil {
		t.Errorf("untouched page resolved to a version")
	}
}

// While a writer is uncommitted the live frame holds its bytes, so every
// snapshot must see the pending before-image; after commit the image
// becomes a bounded version and new snapshots see the live page again.
func TestPendingImageShieldsUncommittedWriter(t *testing.T) {
	s := New(-1)
	s.Pin(50)
	s.CaptureBefore(3, 9, img(0xC))
	if got, _ := s.Lookup(3, 50); got == nil || got[0] != 0xC {
		t.Fatalf("pending image not served: %x", got)
	}
	// Second install by the same tx must not re-capture.
	s.CaptureBefore(3, 9, img(0xD))
	if got, _ := s.Lookup(3, 50); got == nil || got[0] != 0xC {
		t.Fatalf("recapture overwrote first before-image: %x", got)
	}
	s.Commit(9, 60)
	if got, _ := s.Lookup(3, 50); got == nil || got[0] != 0xC {
		t.Fatalf("committed version lost: %x", got)
	}
	if got, _ := s.Lookup(3, 60); got != nil {
		t.Fatalf("snapshot at commit boundary should see live page, got %x", got)
	}
}

func TestAbortDiscardsPending(t *testing.T) {
	s := New(-1)
	s.CaptureBefore(3, 9, img(0xC))
	s.Abort(9)
	if got, _ := s.Lookup(3, 1); got != nil {
		t.Fatalf("aborted writer's image survived: %x", got)
	}
	if b := s.Bytes(); b != 0 {
		t.Fatalf("bytes after abort = %d, want 0", b)
	}
}

// Versions are reclaimed the moment no pinned snapshot can select them,
// and retained while one can.
func TestPinRetainsUnpinReclaims(t *testing.T) {
	s := New(-1)
	s.Pin(5)
	s.CaptureBefore(1, 1, img(0xA))
	s.Commit(1, 10) // selectable by S in [0,10): pinned 5 needs it
	if st := s.Stats(); st.Versions != 1 {
		t.Fatalf("version reclaimed under pin: %+v", st)
	}
	s.Unpin(5)
	if st := s.Stats(); st.Versions != 0 || st.Bytes != 0 || st.Reclaimed != 1 {
		t.Fatalf("version not reclaimed after unpin: %+v", st)
	}
}

// The byte cap evicts the globally oldest version and poisons snapshots
// below the evicted boundary with ErrSnapshotTooOld.
func TestByteCapEvictsAndPoisons(t *testing.T) {
	s := New(8) // two 4-byte images
	s.Pin(1)
	s.CaptureBefore(1, 1, img(0xA))
	s.Commit(1, 10)
	s.CaptureBefore(2, 2, img(0xB))
	s.Commit(2, 20)
	// Third version busts the cap; version (page 1, until 10) is oldest.
	s.CaptureBefore(3, 3, img(0xC))
	s.Commit(3, 30)
	if st := s.Stats(); st.Evicted == 0 || st.Bytes > 8 {
		t.Fatalf("cap not enforced: %+v", st)
	}
	if _, err := s.Lookup(1, 5); err != ErrSnapshotTooOld {
		t.Fatalf("Lookup below evicted boundary: err = %v, want ErrSnapshotTooOld", err)
	}
	// Pages whose versions survived still resolve.
	if got, err := s.Lookup(3, 25); err != nil || got == nil || got[0] != 0xC {
		t.Fatalf("surviving version lost: %x, %v", got, err)
	}
}

// Bounded-memory stress (the satellite-4 test, run under -race): writers
// capture+commit continuously, snapshot readers pin/lookup/unpin, and a
// checkpoint-shaped consumer advances past old LSNs. The store must stay
// within cap + pending slack throughout, and drain to zero once every pin
// is released and all transactions are resolved.
func TestGCStressBoundedMemory(t *testing.T) {
	const (
		maxBytes = 64 << 10
		pages    = 64
		writers  = 4
		readers  = 4
		rounds   = 400
		imgSize  = 128
	)
	s := New(maxBytes)
	var lsn atomic.Uint64 // monotone commit clock
	lsn.Store(1)
	var txSeq atomic.Uint64

	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			buf := make([]byte, imgSize)
			for r := 0; r < rounds; r++ {
				tx := txSeq.Add(1)
				for p := 0; p < 4; p++ {
					pid := uint32((w*rounds+r*7+p*13)%pages + 1)
					s.CaptureBefore(pid, tx, buf)
				}
				if r%10 == 9 {
					s.Abort(tx)
				} else {
					s.Commit(tx, wal.LSN(lsn.Add(1)))
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(rd int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				at := wal.LSN(lsn.Load())
				s.Pin(at)
				for p := 0; p < 8; p++ {
					pid := uint32((rd*31+i*3+p)%pages + 1)
					if _, err := s.Lookup(pid, at); err != nil && err != ErrSnapshotTooOld {
						t.Errorf("reader %d: %v", rd, err)
					}
				}
				s.Unpin(at)
			}
		}(rd)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for w := 0; w < writers*rounds/10; w++ {
			// Pending images are exempt from the cap (correctness requires
			// them), so allow slack for in-flight transactions.
			if b := s.Bytes(); b > maxBytes+writers*4*imgSize {
				t.Errorf("retained bytes %d exceed cap %d + pending slack", b, maxBytes)
				return
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	<-done

	// All writers resolved, no pins left: everything must be reclaimable.
	s.Pin(wal.LSN(lsn.Load()) + 1)
	s.Unpin(wal.LSN(lsn.Load()) + 1) // force a GC pass
	st := s.Stats()
	if st.Bytes != 0 || st.Versions != 0 || st.Pending != 0 {
		t.Fatalf("store did not drain after quiesce: %+v", st)
	}
}

// Sanity for the stress loop's key invariant in miniature: a pin taken at
// the current clock never needs versions at or below it.
func TestFreshPinNeedsNothingOld(t *testing.T) {
	s := New(-1)
	for i := 1; i <= 8; i++ {
		tx := uint64(i)
		s.CaptureBefore(uint32(i), tx, img(byte(i)))
		s.Commit(tx, wal.LSN(i*10))
	}
	s.Pin(80) // == newest boundary: selects none of them
	if st := s.Stats(); st.Versions != 0 {
		t.Fatalf("versions survived a fresh pin at the clock: %+v", st)
	}
	s.Unpin(80)
}

func BenchmarkCaptureCommitLookup(b *testing.B) {
	s := New(-1)
	image := make([]byte, 8192)
	for i := 0; i < b.N; i++ {
		tx := uint64(i + 1)
		pid := uint32(i%256 + 1)
		s.CaptureBefore(pid, tx, image)
		s.Commit(tx, wal.LSN(i+1))
		if _, err := s.Lookup(pid, wal.LSN(i)); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprintf("%d", s.Bytes())
}
