// Package mvcc is the version store behind snapshot reads: it retains
// before-image pages keyed by (page, commit LSN) so a read-only transaction
// can reconstruct the database as of a single snapshot LSN while writers
// proceed — without the reader ever touching the lock manager.
//
// The images come for free: the server's commit path already receives every
// dirty page whole (installPage), so the bytes about to be overwritten ARE
// the before-image the page-diff machinery implies. The store files each
// image under the transaction that overwrote it; when that transaction
// commits at LSN C the image becomes the committed version "valid for every
// snapshot S < C". A snapshot at S resolving page P takes the committed
// version with the smallest boundary above S, or — when the page's current
// frame holds bytes from a still-uncommitted writer — the pending
// before-image, or, failing both, the live page itself.
//
// Retention is pin-based: BeginSnapshot pins its LSN, EndSnapshot unpins,
// and a version is reclaimed as soon as no pinned snapshot can select it
// (future snapshots begin at the newest commit LSN, so they never reach
// backward past it). A byte cap bounds worst-case memory: under pressure
// the globally oldest committed version is evicted and the page poisoned
// below that boundary, so a straggler snapshot gets ErrSnapshotTooOld
// instead of a wrong image. Versions are volatile — checkpoints and crash
// recovery never need them, because redo/undo run from the WAL and volume.
package mvcc

import (
	"errors"
	"sync"

	"quickstore/internal/wal"
)

// ErrSnapshotTooOld reports that the version a snapshot needs was evicted
// under the store's byte cap. The reader must give up this snapshot and
// begin a fresh one.
var ErrSnapshotTooOld = errors.New("mvcc: snapshot too old (version evicted under memory pressure)")

// DefaultMaxBytes caps retained before-images when the caller passes 0.
const DefaultMaxBytes = 64 << 20

// version is one committed before-image: the page as it stood before the
// transaction that committed at `until` rewrote it. It is selected by any
// snapshot S with prevUntil <= S < until.
type version struct {
	until wal.LSN
	image []byte
}

// pendingImage is a before-image whose overwriting transaction has not
// resolved yet. While it exists, the live frame holds uncommitted bytes and
// every snapshot reader of the page uses this image instead.
type pendingImage struct {
	tx    uint64
	image []byte
}

type pageVersions struct {
	committed []version      // ascending by until
	pending   []pendingImage // capture order; head is the oldest writer
	floor     wal.LSN        // versions with until <= floor were cap-evicted
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Captures    int64 // before-images filed
	Lookups     int64 // snapshot page resolutions
	VersionHits int64 // resolved from a committed version
	PendingHits int64 // resolved from an uncommitted writer's before-image
	TooOld      int64 // ErrSnapshotTooOld returned
	Evicted     int64 // versions dropped by the byte cap
	Reclaimed   int64 // versions dropped by pin-based GC
	Versions    int   // committed versions currently retained
	Pending     int   // pending before-images currently retained
	Bytes       int   // retained image bytes (committed + pending)
	Pins        int   // distinct pinned snapshot LSNs
}

// Store is the version store. All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	maxBytes int
	pages    map[uint32]*pageVersions
	byTx     map[uint64][]uint32 // pages with a pending image per transaction
	pins     map[wal.LSN]int
	bytes    int

	captures    int64
	lookups     int64
	versionHits int64
	pendingHits int64
	tooOld      int64
	evicted     int64
	reclaimed   int64
}

// New builds a version store retaining at most maxBytes of images
// (0 = DefaultMaxBytes, negative = unbounded).
func New(maxBytes int) *Store {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{
		maxBytes: maxBytes,
		pages:    map[uint32]*pageVersions{},
		byTx:     map[uint64][]uint32{},
		pins:     map[wal.LSN]int{},
	}
}

// CaptureBefore files the current image of page pid as the before-image of
// transaction tx, copying it. Only the first capture per (tx, page) counts:
// the caller invokes it before every install, and the image that matters is
// the one preceding the transaction's FIRST overwrite. Must be called
// before the live frame is overwritten (the server does so while holding
// the frame's content latch for write, which orders it against snapshot
// copies of the frame).
func (s *Store) CaptureBefore(pid uint32, tx uint64, image []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pv := s.pages[pid]
	if pv == nil {
		pv = &pageVersions{}
		s.pages[pid] = pv
	}
	for _, p := range pv.pending {
		if p.tx == tx {
			return // later installs by the same tx overwrite its own bytes
		}
	}
	pv.pending = append(pv.pending, pendingImage{tx: tx, image: append([]byte(nil), image...)})
	s.byTx[tx] = append(s.byTx[tx], pid)
	s.bytes += len(image)
	s.captures++
	s.enforceCapLocked()
}

// Commit resolves transaction tx at commitLSN: each of its pending images
// whose page it was the oldest uncommitted writer of becomes a committed
// version valid below commitLSN. (On lock-protected pages the X lock
// serializes writers, so the image is always at the head; interleaved
// writers on unlocked structural pages degrade to dropping the younger
// image, which only loses precision pages that were never read-ordered to
// begin with.) Call it at the instant the commit record is appended — that
// LSN is the version boundary snapshot selection compares against.
func (s *Store) Commit(tx uint64, commitLSN wal.LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pid := range s.byTx[tx] {
		pv := s.pages[pid]
		if pv == nil {
			continue
		}
		idx := -1
		for i, p := range pv.pending {
			if p.tx == tx {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		img := pv.pending[idx]
		pv.pending = append(pv.pending[:idx], pv.pending[idx+1:]...)
		if idx != 0 {
			// An older writer is still unresolved; its head image already
			// covers every snapshot below both commits.
			s.bytes -= len(img.image)
			continue
		}
		if n := len(pv.committed); n > 0 && pv.committed[n-1].until >= commitLSN {
			s.bytes -= len(img.image) // out-of-order boundary; keep chain sorted
			continue
		}
		pv.committed = append(pv.committed, version{until: commitLSN, image: img.image})
	}
	delete(s.byTx, tx)
	s.gcLocked()
}

// Abort discards transaction tx's pending images: the live frames are being
// rolled back to exactly these bytes, so the versions would be redundant.
func (s *Store) Abort(tx uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pid := range s.byTx[tx] {
		pv := s.pages[pid]
		if pv == nil {
			continue
		}
		for i, p := range pv.pending {
			if p.tx == tx {
				s.bytes -= len(p.image)
				pv.pending = append(pv.pending[:i], pv.pending[i+1:]...)
				break
			}
		}
	}
	delete(s.byTx, tx)
	s.gcLocked()
}

// Pin registers a snapshot at LSN s, protecting every version it may
// select from reclamation. Multiple snapshots at one LSN refcount.
func (st *Store) Pin(s wal.LSN) {
	st.mu.Lock()
	st.pins[s]++
	st.mu.Unlock()
}

// Unpin releases one snapshot at LSN s and reclaims whatever no longer has
// a pinned reader. Unpinning an unknown LSN is a no-op.
func (st *Store) Unpin(s wal.LSN) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n, ok := st.pins[s]; ok {
		if n <= 1 {
			delete(st.pins, s)
		} else {
			st.pins[s] = n - 1
		}
	}
	st.gcLocked()
}

// Lookup resolves page pid for a snapshot at LSN s. A nil image with nil
// error means the live page is the right answer (no version intervenes).
// The returned slice is shared — callers must treat it as read-only.
//
// The caller's protocol makes the race with writers safe: read the live
// frame FIRST, then Lookup. A writer captures the before-image (visible to
// Lookup) strictly before overwriting the frame, so if the live read saw
// new bytes the pending image is already filed, and if Lookup misses the
// image the live bytes were still the old ones.
func (st *Store) Lookup(pid uint32, s wal.LSN) ([]byte, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lookups++
	pv := st.pages[pid]
	if pv == nil {
		return nil, nil
	}
	if s < pv.floor {
		st.tooOld++
		return nil, ErrSnapshotTooOld
	}
	// Smallest boundary above s wins: that version is the page as of the
	// last commit at or below s.
	lo, hi := 0, len(pv.committed)
	for lo < hi {
		mid := (lo + hi) / 2
		if pv.committed[mid].until > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(pv.committed) {
		st.versionHits++
		return pv.committed[lo].image, nil
	}
	if len(pv.pending) > 0 {
		st.pendingHits++
		return pv.pending[0].image, nil
	}
	return nil, nil
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Captures:    s.captures,
		Lookups:     s.lookups,
		VersionHits: s.versionHits,
		PendingHits: s.pendingHits,
		TooOld:      s.tooOld,
		Evicted:     s.evicted,
		Reclaimed:   s.reclaimed,
		Bytes:       s.bytes,
		Pins:        len(s.pins),
	}
	for _, pv := range s.pages {
		out.Versions += len(pv.committed)
		out.Pending += len(pv.pending)
	}
	return out
}

// Bytes returns the retained image bytes.
func (s *Store) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// gcLocked reclaims every version no pinned snapshot can select. A version
// with boundary U is selectable only by snapshots strictly below U; new
// snapshots pin at the newest commit LSN, which is >= every boundary, so
// once the minimum pinned LSN reaches U the version is dead forever.
func (s *Store) gcLocked() {
	minPinned := wal.LSN(^uint64(0))
	for p := range s.pins {
		if p < minPinned {
			minPinned = p
		}
	}
	for pid, pv := range s.pages {
		for len(pv.committed) > 0 && pv.committed[0].until <= minPinned {
			s.bytes -= len(pv.committed[0].image)
			pv.committed[0].image = nil
			pv.committed = pv.committed[1:]
			s.reclaimed++
		}
		if len(pv.committed) == 0 && len(pv.pending) == 0 && minPinned >= pv.floor {
			delete(s.pages, pid)
		}
	}
}

// enforceCapLocked evicts globally oldest committed versions until the
// byte cap holds, poisoning each page below the evicted boundary. Pending
// images are never evicted — while a writer is unresolved its before-image
// is the only correct answer for every snapshot reader of the page.
func (s *Store) enforceCapLocked() {
	if s.maxBytes < 0 {
		return
	}
	for s.bytes > s.maxBytes {
		var oldest *pageVersions
		oldestLSN := wal.LSN(^uint64(0))
		for _, pv := range s.pages {
			if len(pv.committed) > 0 && pv.committed[0].until < oldestLSN {
				oldestLSN = pv.committed[0].until
				oldest = pv
			}
		}
		if oldest == nil {
			return // only pending images remain; cap is best-effort there
		}
		s.bytes -= len(oldest.committed[0].image)
		if oldest.committed[0].until > oldest.floor {
			oldest.floor = oldest.committed[0].until
		}
		oldest.committed[0].image = nil
		oldest.committed = oldest.committed[1:]
		s.evicted++
	}
}
