module quickstore

go 1.22
