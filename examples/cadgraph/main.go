// Cadgraph: the workload the OO7 benchmark's introduction motivates — a
// CAD design library of composite parts, each with a graph of atomic parts
// wired by connections, clustered on disk so a whole design loads with one
// page fault. The program builds a small library, then runs a dense
// traversal twice (cold, then hot) and reports how faulting behaves.
//
// Run with:
//
//	go run ./examples/cadgraph
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quickstore/quickstore"
)

// Atomic part (40 bytes):
//
//	[0:4)   id
//	[4:8)   x
//	[8:16)  edge0  Ref (next part in the design)
//	[16:24) edge1  Ref (random part in the design)
//	[24:32) partOf Ref (the design header)
const (
	partID     = 0
	partX      = 4
	partEdge0  = 8
	partEdge1  = 16
	partPartOf = 24
	partSize   = 32
)

// Design header (16 bytes): [0:8) root part, [8:16) next design.
const (
	designRoot = 0
	designNext = 8
	designSize = 16
)

const (
	numDesigns      = 64
	partsPerDesign  = 40
	traversalRounds = 2
)

func main() {
	st, err := quickstore.CreateMem(quickstore.Options{ClientBufferPages: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(7))
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		var firstDesign, prevDesign quickstore.Ref
		id := uint32(1)
		for d := 0; d < numDesigns; d++ {
			cl.Break() // each design gets its own cluster of pages
			design, err := tx.Alloc(cl, designSize, []int{designRoot, designNext})
			if err != nil {
				return err
			}
			parts := make([]quickstore.Ref, partsPerDesign)
			for i := range parts {
				parts[i], err = tx.Alloc(cl, partSize, []int{partEdge0, partEdge1, partPartOf})
				if err != nil {
					return err
				}
			}
			for i, p := range parts {
				tx.WriteU32(p+partID, id)
				tx.WriteU32(p+partX, uint32(rng.Intn(1000)))
				tx.WriteRef(p+partEdge0, parts[(i+1)%len(parts)])
				tx.WriteRef(p+partEdge1, parts[rng.Intn(len(parts))])
				tx.WriteRef(p+partPartOf, design)
				id++
			}
			tx.WriteRef(design+designRoot, parts[0])
			if prevDesign != quickstore.NilRef {
				tx.WriteRef(prevDesign+designNext, design)
			} else {
				firstDesign = design
			}
			prevDesign = design
		}
		return tx.SetRoot("library", firstDesign)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.DropCaches(); err != nil {
		log.Fatal(err)
	}

	for round := 1; round <= traversalRounds; round++ {
		before := st.Stats()
		visited := 0
		var sum uint64
		err = st.View(func(tx *quickstore.Tx) error {
			design, err := tx.Root("library")
			if err != nil {
				return err
			}
			for design != quickstore.NilRef {
				root, err := tx.ReadRef(design + designRoot)
				if err != nil {
					return err
				}
				seen := map[uint32]bool{}
				if err := dfs(tx, root, seen, &visited, &sum); err != nil {
					return err
				}
				if design, err = tx.ReadRef(design + designNext); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		after := st.Stats()
		kind := "cold"
		if round > 1 {
			kind = "hot"
		}
		fmt.Printf("%-4s traversal: visited %d parts (x-sum %d), %d faults, %d reads, simulated %.1fms\n",
			kind, visited, sum,
			after.Faults-before.Faults, after.ClientReads-before.ClientReads,
			after.SimulatedMs-before.SimulatedMs)
	}
	s := st.Stats()
	fmt.Printf("mapping holds %d page descriptors; %d pointers swizzled (no collisions expected)\n",
		s.MappedPages, s.SwizzledPtrs)
}

// dfs walks a design's part graph by dereferencing persistent pointers.
func dfs(tx *quickstore.Tx, part quickstore.Ref, seen map[uint32]bool, visited *int, sum *uint64) error {
	id, err := tx.ReadU32(part + partID)
	if err != nil {
		return err
	}
	if seen[id] {
		return nil
	}
	seen[id] = true
	*visited++
	x, err := tx.ReadU32(part + partX)
	if err != nil {
		return err
	}
	*sum += uint64(x)
	for _, off := range []quickstore.Ref{partEdge0, partEdge1} {
		next, err := tx.ReadRef(part + off)
		if err != nil {
			return err
		}
		if next != quickstore.NilRef {
			if err := dfs(tx, next, seen, visited, sum); err != nil {
				return err
			}
		}
	}
	return nil
}
