// Quickstart: create a persistent linked list of tasks through the public
// QuickStore API, close the store, reopen it, and traverse the list by
// dereferencing plain persistent pointers — the pages fault in on demand.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"quickstore/quickstore"
)

// A task node layout (24 bytes):
//
//	[0:8)   next  Ref
//	[8:12)  priority
//	[12:24) label (fixed 12 bytes)
const (
	offNext     = 0
	offPriority = 8
	offLabel    = 12
	nodeSize    = 24
)

func main() {
	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "tasks.qs")

	// Build the database.
	st, err := quickstore.Create(path, quickstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tasks := []struct {
		label    string
		priority uint32
	}{
		{"write docs", 2},
		{"fix bug", 1},
		{"ship v1", 3},
	}
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		head := quickstore.NilRef
		// Build back-to-front so the head ends up first.
		for i := len(tasks) - 1; i >= 0; i-- {
			node, err := tx.Alloc(cl, nodeSize, []int{offNext})
			if err != nil {
				return err
			}
			if err := tx.WriteRef(node+offNext, head); err != nil {
				return err
			}
			if err := tx.WriteU32(node+offPriority, tasks[i].priority); err != nil {
				return err
			}
			if err := tx.WriteBytes(node+offLabel, []byte(fmt.Sprintf("%-12s", tasks[i].label))); err != nil {
				return err
			}
			head = node
		}
		return tx.SetRoot("tasks", head)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen and traverse: a brand-new process image, so every page access
	// below goes through the fault handler the first time.
	st, err = quickstore.Open(path, quickstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	err = st.View(func(tx *quickstore.Tx) error {
		node, err := tx.Root("tasks")
		if err != nil {
			return err
		}
		fmt.Println("tasks:")
		for node != quickstore.NilRef {
			prio, err := tx.ReadU32(node + offPriority)
			if err != nil {
				return err
			}
			label := make([]byte, 12)
			if err := tx.ReadBytes(node+offLabel, label); err != nil {
				return err
			}
			fmt.Printf("  p%d %s (%s)\n", prio, label, quickstore.FrameOf(node))
			next, err := tx.ReadRef(node + offNext)
			if err != nil {
				return err
			}
			node = next
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	s := st.Stats()
	fmt.Printf("stats: %d faults, %d client reads, %d swizzled pointers, %d mapped pages\n",
		s.Faults, s.ClientReads, s.SwizzledPtrs, s.MappedPages)
}
