// Faultviz: a visual trace of QuickStore's fault handling and pointer
// swizzling. The program builds a pointer-rich database, closes it, then
// reopens it several times with increasing forced-relocation fractions (the
// paper's Figure 17 experiment) and shows how faults, swizzled pointers,
// and simulated time respond.
//
// Run with:
//
//	go run ./examples/faultviz
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"quickstore/quickstore"
)

// Node (32 bytes): [0:8) left, [8:16) right, [16:20) id.
const (
	offLeft  = 0
	offRight = 8
	offID    = 16
	nodeSize = 24
)

const treeDepth = 11 // 2^11-1 nodes, one node per page would be overkill; cluster per subtree

func main() {
	dir, err := os.MkdirTemp("", "faultviz")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.qs")

	if err := build(path); err != nil {
		log.Fatal(err)
	}

	fmt.Println("reloc%   faults  swizzled  relocated  reads  simulated-ms")
	for _, frac := range []float64{0, 0.25, 0.50, 1.00} {
		if err := traverse(path, frac); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nWith 0% every page keeps its previous virtual address, so no pointer")
	fmt.Println("is ever rewritten; forcing relocations makes the fault handler read")
	fmt.Println("bitmap objects and swizzle every affected pointer (Section 5.5).")
}

// build creates a complete binary tree of nodes, clustering each leaf-ward
// subtree, and records the root.
func build(path string) error {
	st, err := quickstore.Create(path, quickstore.Options{BulkLoad: true})
	if err != nil {
		return err
	}
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		id := uint32(1)
		var mk func(depth int) (quickstore.Ref, error)
		mk = func(depth int) (quickstore.Ref, error) {
			if depth == 0 {
				return quickstore.NilRef, nil
			}
			if depth == 4 {
				cl.Break() // new cluster per small subtree
			}
			n, err := tx.Alloc(cl, nodeSize, []int{offLeft, offRight})
			if err != nil {
				return quickstore.NilRef, err
			}
			if err := tx.WriteU32(n+offID, id); err != nil {
				return quickstore.NilRef, err
			}
			id++
			l, err := mk(depth - 1)
			if err != nil {
				return quickstore.NilRef, err
			}
			r, err := mk(depth - 1)
			if err != nil {
				return quickstore.NilRef, err
			}
			if err := tx.WriteRef(n+offLeft, l); err != nil {
				return quickstore.NilRef, err
			}
			return n, tx.WriteRef(n+offRight, r)
		}
		root, err := mk(treeDepth)
		if err != nil {
			return err
		}
		return tx.SetRoot("tree", root)
	})
	if err != nil {
		return err
	}
	return st.Close()
}

// traverse reopens the database with the given forced-relocation fraction
// and walks the whole tree, printing the fault-activity row.
func traverse(path string, frac float64) error {
	st, err := quickstore.Open(path, quickstore.Options{
		Relocation:       quickstore.RelocCR,
		RelocateFraction: frac,
		RelocSeed:        int64(frac*100) + 1,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	count := 0
	err = st.View(func(tx *quickstore.Tx) error {
		root, err := tx.Root("tree")
		if err != nil {
			return err
		}
		var walk func(n quickstore.Ref) error
		walk = func(n quickstore.Ref) error {
			if n == quickstore.NilRef {
				return nil
			}
			if _, err := tx.ReadU32(n + offID); err != nil {
				return err
			}
			count++
			l, err := tx.ReadRef(n + offLeft)
			if err != nil {
				return err
			}
			if err := walk(l); err != nil {
				return err
			}
			r, err := tx.ReadRef(n + offRight)
			if err != nil {
				return err
			}
			return walk(r)
		}
		return walk(root)
	})
	if err != nil {
		return err
	}
	s := st.Stats()
	fmt.Printf("%5.0f%%  %7d  %8d  %9d  %5d  %10.1f   (visited %d nodes)\n",
		frac*100, s.Faults, s.SwizzledPtrs, s.Relocations, s.ClientReads, s.SimulatedMs, count)
	return nil
}
