// Docstore: the paper's large-object workload (T8/T9) as an application —
// a library of multi-page manuals stored as contiguous page runs, scanned
// character by character through plain persistent pointers. The scan's cost
// is one protected memory access per character; the software-interpreter
// baseline pays a function call per character instead, which is why the
// paper's T8 is 32x slower on E.
//
// Run with:
//
//	go run ./examples/docstore
package main

import (
	"fmt"
	"log"
	"strings"

	"quickstore/quickstore"
)

// Manual catalog entry (64 bytes):
//
//	[0:8)   text   Ref -> large object
//	[8:16)  next   Ref -> next entry
//	[16:24) size   u64
//	[24:64) title  (40 bytes)
const (
	entText  = 0
	entNext  = 8
	entSize  = 16
	entTitle = 24
	entBytes = 64
)

var manuals = []struct {
	title string
	body  string
	reps  int
}{
	{"installation guide", "mount the volume, run qsstore create, open the store. ", 700},
	{"operations manual", "page faults are handled by the runtime; watch the stats. ", 1200},
	{"design reference", "pointers are virtual addresses; pages map into the buffer pool. ", 500},
}

func main() {
	st, err := quickstore.CreateMem(quickstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Load the manuals: each body becomes a multi-page object.
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		head := quickstore.NilRef
		for i := len(manuals) - 1; i >= 0; i-- {
			m := manuals[i]
			body := strings.Repeat(m.body, m.reps)
			text, err := tx.AllocLarge(cl, uint64(len(body)))
			if err != nil {
				return err
			}
			if err := tx.WriteLarge(text, []byte(body), 0); err != nil {
				return err
			}
			ent, err := tx.Alloc(cl, entBytes, []int{entText, entNext})
			if err != nil {
				return err
			}
			tx.WriteRef(ent+entText, text)
			tx.WriteRef(ent+entNext, head)
			tx.WriteU64(ent+entSize, uint64(len(body)))
			tx.WriteBytes(ent+entTitle, []byte(fmt.Sprintf("%-40s", m.title)))
			head = ent
		}
		return tx.SetRoot("manuals", head)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.DropCaches(); err != nil {
		log.Fatal(err)
	}

	// Scan every manual, counting vowels (the T8 pattern), and compare the
	// first and last characters (the T9 pattern).
	err = st.View(func(tx *quickstore.Tx) error {
		ent, err := tx.Root("manuals")
		if err != nil {
			return err
		}
		for ent != quickstore.NilRef {
			title := make([]byte, 40)
			if err := tx.ReadBytes(ent+entTitle, title); err != nil {
				return err
			}
			size, err := tx.ReadU64(ent + entSize)
			if err != nil {
				return err
			}
			text, err := tx.ReadRef(ent + entText)
			if err != nil {
				return err
			}
			before := st.Stats()
			vowels := 0
			for i := uint64(0); i < size; i++ {
				c, err := tx.ReadU8(text + quickstore.Ref(i))
				if err != nil {
					return err
				}
				switch c {
				case 'a', 'e', 'i', 'o', 'u':
					vowels++
				}
			}
			first, err := tx.ReadU8(text)
			if err != nil {
				return err
			}
			last, err := tx.ReadU8(text + quickstore.Ref(size-1))
			if err != nil {
				return err
			}
			after := st.Stats()
			fmt.Printf("%s %7d bytes  %6d vowels  first=%q last=%q  (%d faults, %d reads)\n",
				title, size, vowels, first, last,
				after.Faults-before.Faults, after.ClientReads-before.ClientReads)
			if ent, err = tx.ReadRef(ent + entNext); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	s := st.Stats()
	fmt.Printf("total: %d accesses through virtual memory, %d faults, simulated %.1fms\n",
		s.Accesses, s.Faults, s.SimulatedMs)
}
