package quickstore_test

import (
	"fmt"
	"log"

	"quickstore/quickstore"
)

// Example shows the basic lifecycle: create a store, persist a pointer
// graph, and traverse it by dereferencing persistent references.
func Example() {
	st, err := quickstore.CreateMem(quickstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// A pair node: [0:8) partner Ref, [8:12) value.
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		a, err := tx.Alloc(cl, 16, []int{0})
		if err != nil {
			return err
		}
		b, err := tx.Alloc(cl, 16, []int{0})
		if err != nil {
			return err
		}
		tx.WriteRef(a, b)
		tx.WriteRef(b, a)
		tx.WriteU32(a+8, 1)
		tx.WriteU32(b+8, 2)
		return tx.SetRoot("pair", a)
	})
	if err != nil {
		log.Fatal(err)
	}

	err = st.View(func(tx *quickstore.Tx) error {
		a, err := tx.Root("pair")
		if err != nil {
			return err
		}
		b, err := tx.ReadRef(a)
		if err != nil {
			return err
		}
		va, _ := tx.ReadU32(a + 8)
		vb, _ := tx.ReadU32(b + 8)
		back, _ := tx.ReadRef(b)
		fmt.Println(va, vb, back == a)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: 1 2 true
}

// ExampleStore_Stats demonstrates observing fault activity after dropping
// the caches.
func ExampleStore_Stats() {
	st, err := quickstore.CreateMem(quickstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		r, err := tx.Alloc(cl, 8, nil)
		if err != nil {
			return err
		}
		return tx.SetRoot("r", r)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.DropCaches(); err != nil {
		log.Fatal(err)
	}
	before := st.Stats().Faults
	err = st.View(func(tx *quickstore.Tx) error {
		r, err := tx.Root("r")
		if err != nil {
			return err
		}
		_, err = tx.ReadU32(r)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st.Stats().Faults-before >= 1)
	// Output: true
}
