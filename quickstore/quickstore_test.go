package quickstore_test

import (
	"errors"
	"path/filepath"
	"testing"

	"quickstore/quickstore"
)

func TestUpdateViewRoundTrip(t *testing.T) {
	st, err := quickstore.CreateMem(quickstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var node quickstore.Ref
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		var err error
		node, err = tx.Alloc(cl, 16, []int{0})
		if err != nil {
			return err
		}
		if err := tx.WriteU32(node+8, 42); err != nil {
			return err
		}
		return tx.SetRoot("head", node)
	})
	if err != nil {
		t.Fatal(err)
	}

	err = st.View(func(tx *quickstore.Tx) error {
		head, err := tx.Root("head")
		if err != nil {
			return err
		}
		v, err := tx.ReadU32(head + 8)
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("read %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().MappedPages == 0 {
		t.Error("no pages in the mapping")
	}
}

func TestUpdateErrorAborts(t *testing.T) {
	st, _ := quickstore.CreateMem(quickstore.Options{})
	defer st.Close()
	var node quickstore.Ref
	if err := st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		node, _ = tx.Alloc(cl, 16, nil)
		tx.WriteU32(node, 1)
		return tx.SetRoot("n", node)
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := st.Update(func(tx *quickstore.Tx) error {
		tx.WriteU32(node, 999)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st.View(func(tx *quickstore.Tx) error {
		v, err := tx.ReadU32(node)
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("aborted write visible: %d", v)
		}
		return nil
	})
}

func TestUpdatePanicAborts(t *testing.T) {
	st, _ := quickstore.CreateMem(quickstore.Options{})
	defer st.Close()
	func() {
		defer func() { recover() }()
		st.Update(func(tx *quickstore.Tx) error {
			panic("kaboom")
		})
	}()
	// Store still usable.
	if err := st.Update(func(tx *quickstore.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestNestedTransactionRejected(t *testing.T) {
	st, _ := quickstore.CreateMem(quickstore.Options{})
	defer st.Close()
	err := st.Update(func(tx *quickstore.Tx) error {
		return st.Update(func(*quickstore.Tx) error { return nil })
	})
	if err == nil {
		t.Fatal("nested Update succeeded")
	}
}

func TestFileBackedPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.qs")
	st, err := quickstore.Create(path, quickstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		a, err := tx.Alloc(cl, 24, []int{0})
		if err != nil {
			return err
		}
		b, err := tx.Alloc(cl, 24, nil)
		if err != nil {
			return err
		}
		if err := tx.WriteRef(a, b); err != nil {
			return err
		}
		if err := tx.WriteBytes(b+8, []byte("persist me")); err != nil {
			return err
		}
		return tx.SetRoot("a", a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := quickstore.Open(path, quickstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	err = st2.View(func(tx *quickstore.Tx) error {
		a, err := tx.Root("a")
		if err != nil {
			return err
		}
		b, err := tx.ReadRef(a)
		if err != nil {
			return err
		}
		buf := make([]byte, 10)
		if err := tx.ReadBytes(b+8, buf); err != nil {
			return err
		}
		if string(buf) != "persist me" {
			t.Errorf("read %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().Faults == 0 {
		t.Error("reopened store faulted no pages")
	}
}

func TestLargeObjects(t *testing.T) {
	st, _ := quickstore.CreateMem(quickstore.Options{})
	defer st.Close()
	const size = 3*quickstore.PageSize + 99
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	var man quickstore.Ref
	err := st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		var err error
		man, err = tx.AllocLarge(cl, size)
		if err != nil {
			return err
		}
		anchor, err := tx.Alloc(cl, 8, []int{0})
		if err != nil {
			return err
		}
		if err := tx.WriteRef(anchor, man); err != nil {
			return err
		}
		if err := tx.SetRoot("man", anchor); err != nil {
			return err
		}
		return tx.WriteLarge(man, payload, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DropCaches(); err != nil {
		t.Fatal(err)
	}
	err = st.View(func(tx *quickstore.Tx) error {
		anchor, err := tx.Root("man")
		if err != nil {
			return err
		}
		m, err := tx.ReadRef(anchor)
		if err != nil {
			return err
		}
		if n, err := tx.LargeSize(m); err != nil || n != size {
			t.Errorf("LargeSize = %d, %v", n, err)
		}
		for _, off := range []int{0, quickstore.PageSize, size - 1} {
			b, err := tx.ReadU8(m + quickstore.Ref(off))
			if err != nil {
				return err
			}
			if b != byte(off) {
				t.Errorf("byte %d = %d", off, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsProgress(t *testing.T) {
	st, _ := quickstore.CreateMem(quickstore.Options{})
	defer st.Close()
	st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		r, _ := tx.Alloc(cl, 64, nil)
		return tx.SetRoot("r", r)
	})
	st.DropCaches()
	before := st.Stats()
	st.View(func(tx *quickstore.Tx) error {
		r, _ := tx.Root("r")
		_, err := tx.ReadU32(r)
		return err
	})
	after := st.Stats()
	if after.Faults <= before.Faults {
		t.Error("cold read faulted no pages")
	}
	if after.ClientReads <= before.ClientReads {
		t.Error("cold read issued no client reads")
	}
	if after.SimulatedMs <= before.SimulatedMs {
		t.Error("clock did not advance")
	}
}

func TestSnapshotSession(t *testing.T) {
	st, err := quickstore.CreateMem(quickstore.Options{MVCC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var node quickstore.Ref
	if err := st.Update(func(tx *quickstore.Tx) error {
		cl := tx.NewCluster()
		node, _ = tx.Alloc(cl, 16, nil)
		if err := tx.WriteU32(node, 7); err != nil {
			return err
		}
		return tx.SetRoot("n", node)
	}); err != nil {
		t.Fatal(err)
	}
	err = st.Snapshot(func(tx *quickstore.Tx) error {
		r, err := tx.Root("n")
		if err != nil {
			return err
		}
		v, err := tx.ReadU32(r)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("snapshot read %d, want 7", v)
		}
		// Writes inside the snapshot session must be refused.
		if err := tx.WriteU32(r, 99); !errors.Is(err, quickstore.ErrSnapshotReadOnly) {
			t.Errorf("write inside snapshot: err = %v, want ErrSnapshotReadOnly", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The refused write left nothing behind, and the store writes normally.
	if err := st.Update(func(tx *quickstore.Tx) error {
		v, err := tx.ReadU32(node)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("after snapshot: %d, want 7", v)
		}
		return tx.WriteU32(node, 8)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRequiresMVCC(t *testing.T) {
	st, _ := quickstore.CreateMem(quickstore.Options{})
	defer st.Close()
	if err := st.Snapshot(func(*quickstore.Tx) error { return nil }); err == nil {
		t.Fatal("Snapshot succeeded without Options.MVCC")
	}
	if err := st.Update(func(tx *quickstore.Tx) error {
		if err := st.Snapshot(func(*quickstore.Tx) error { return nil }); err == nil {
			t.Error("Snapshot allowed inside a transaction")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
