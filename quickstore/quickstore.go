// Package quickstore is the public API of this QuickStore reproduction: a
// memory-mapped persistent object store in the style of White & DeWitt
// (SIGMOD 1994), layered on an EXODUS-like page-shipping storage manager.
//
// Persistent objects live on 8K pages and are addressed by Ref values —
// simulated virtual-memory addresses. Dereferencing a Ref whose page is not
// resident triggers a page fault handled by the QuickStore runtime: the
// page is fetched from the storage server, its mapping object is processed
// so every page it references gets a virtual frame, and pointers are
// swizzled only if a frame collision forces relocation. Updates are caught
// by write-protection faults and logged by page diffing.
//
// A minimal session:
//
//	st, _ := quickstore.CreateMem(quickstore.Options{})
//	defer st.Close()
//	err := st.Update(func(tx *quickstore.Tx) error {
//	    cl := tx.NewCluster()
//	    node, _ := tx.Alloc(cl, 16, []int{0}) // 8-byte ref at offset 0
//	    tx.WriteU32(node+8, 42)
//	    return tx.SetRoot("head", node)
//	})
//
// See examples/ for complete programs and DESIGN.md for how the simulated
// virtual memory substitutes for mmap/SIGSEGV (the paper's hardware path).
package quickstore

import (
	"errors"
	"fmt"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
	"quickstore/internal/wal"
)

// Ref is a persistent reference: a virtual-memory address whose high bits
// name an 8K frame and whose low 13 bits locate the object within its page.
type Ref = core.Ref

// NilRef is the null persistent reference.
const NilRef = core.NilRef

// PageSize is the unit of disk allocation, transfer, and virtual-memory
// mapping.
const PageSize = disk.PageSize

// Options tunes a store.
type Options struct {
	// ServerBufferPages sizes the server pool (default 4608, the paper's
	// 36MB).
	ServerBufferPages int
	// ClientBufferPages sizes the client pool (default 1536, 12MB).
	ClientBufferPages int
	// RecoveryBufferBytes bounds the update recovery area (default 4MB).
	RecoveryBufferBytes int
	// BulkLoad disables logging for initial loads; pages ship whole at
	// commit. Reopen the store normally afterwards.
	BulkLoad bool
	// Relocation selects how pages that cannot keep their previous
	// virtual addresses are handled (the paper's Section 5.5):
	// continual relocation (default) re-swizzles in memory only; one-time
	// relocation commits the changed mapping back to the database.
	Relocation RelocationMode
	// RelocateFraction forces this fraction of page assignments to move
	// even without a collision — the paper's Figure 17 experiment knob.
	RelocateFraction float64
	// RelocSeed seeds the relocation-injection randomness.
	RelocSeed int64
	// Prefetch enables the asynchronous mapping-object-driven prefetcher
	// (internal/prefetch): pages referenced by a faulted page are read
	// ahead in batches and the next fault on them is a buffer hit. Off by
	// default (the paper's configuration).
	Prefetch bool
	// PrefetchDepth, PrefetchBatch, and PrefetchWorkers tune the
	// prefetcher's queue depth, pages per batched read, and concurrent
	// fetch fan-out (0 = package defaults).
	PrefetchDepth   int
	PrefetchBatch   int
	PrefetchWorkers int
	// MVCC enables the server's version store so Snapshot sessions work:
	// read-only views at one consistent commit point that never touch the
	// lock manager (DESIGN.md §15). Off by default (the paper's
	// configuration; the experiment tables are byte-identical either way).
	MVCC bool
}

// RelocationMode selects the Section 5.5 relocation policy.
type RelocationMode = core.RelocationMode

// Relocation policies.
const (
	RelocNormal = core.RelocNormal // swizzle on collision, in memory only
	RelocCR     = core.RelocCR     // continual relocation (never written back)
	RelocOR     = core.RelocOR     // one-time relocation (committed)
)

// Store is an open QuickStore database: an embedded page server plus one
// client session. It is single-threaded, modeling the paper's one
// application process per client.
type Store struct {
	vol    disk.Volume
	log    *wal.Log
	srv    *esm.Server
	client *esm.Client
	core   *core.Store
	clock  *sim.Clock
	inTx   bool
}

// CreateMem creates a fresh in-memory store (tests, examples, benchmarks).
func CreateMem(opts Options) (*Store, error) {
	return create(disk.NewMemVolume(), wal.NewMemLog(), opts)
}

// Create creates a fresh file-backed store: the database volume at path and
// the write-ahead log at path + ".log".
func Create(path string, opts Options) (*Store, error) {
	vol, err := disk.CreateFileVolume(path)
	if err != nil {
		return nil, err
	}
	log, err := wal.CreateFileLog(path + ".log")
	if err != nil {
		vol.Close()
		return nil, err
	}
	return create(vol, log, opts)
}

// Open opens an existing file-backed store, running restart recovery from
// its log.
func Open(path string, opts Options) (*Store, error) {
	vol, err := disk.OpenFileVolume(path)
	if err != nil {
		return nil, err
	}
	log, err := wal.OpenFileLog(path + ".log")
	if err != nil {
		vol.Close()
		return nil, err
	}
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.OpenServer(vol, log, esm.ServerConfig{BufferPages: opts.ServerBufferPages, Clock: clock, MVCC: opts.MVCC})
	if err != nil {
		vol.Close()
		log.Close()
		return nil, err
	}
	return attach(vol, log, srv, clock, opts, false)
}

func create(vol disk.Volume, log *wal.Log, opts Options) (*Store, error) {
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(vol, log, esm.ServerConfig{BufferPages: opts.ServerBufferPages, Clock: clock, MVCC: opts.MVCC})
	if err != nil {
		vol.Close()
		log.Close()
		return nil, err
	}
	return attach(vol, log, srv, clock, opts, true)
}

func attach(vol disk.Volume, log *wal.Log, srv *esm.Server, clock *sim.Clock, opts Options, fresh bool) (*Store, error) {
	client := esm.NewClient(esm.NewInProcTransport(srv),
		esm.ClientConfig{BufferPages: opts.ClientBufferPages, Clock: clock})
	cfg := core.Config{
		BulkLoad:            opts.BulkLoad,
		RecoveryBufferBytes: opts.RecoveryBufferBytes,
		Relocation:          opts.Relocation,
		RelocateFraction:    opts.RelocateFraction,
		RelocSeed:           opts.RelocSeed,
		Prefetch:            opts.Prefetch,
		PrefetchDepth:       opts.PrefetchDepth,
		PrefetchBatch:       opts.PrefetchBatch,
		PrefetchWorkers:     opts.PrefetchWorkers,
	}
	var cs *core.Store
	var err error
	if fresh {
		cs, err = core.New(client, cfg)
	} else {
		cs, err = core.Open(client, cfg)
	}
	if err != nil {
		vol.Close()
		log.Close()
		return nil, err
	}
	return &Store{vol: vol, log: log, srv: srv, client: client, core: cs, clock: clock}, nil
}

// Close checkpoints the server and releases the volume and log.
func (s *Store) Close() error {
	if s.inTx {
		return errors.New("quickstore: Close inside a transaction")
	}
	if err := s.srv.Checkpoint(); err != nil {
		return err
	}
	if err := s.log.Close(); err != nil {
		return err
	}
	return s.vol.Close()
}

// Tx is an open transaction. All object access happens through it.
type Tx struct {
	s *Store
}

// Update runs fn in a read-write transaction: commit on nil, abort on error
// or panic.
func (s *Store) Update(fn func(tx *Tx) error) (err error) {
	if s.inTx {
		return errors.New("quickstore: nested transaction")
	}
	if err := s.core.Begin(); err != nil {
		return err
	}
	s.inTx = true
	defer func() {
		s.inTx = false
		if p := recover(); p != nil {
			//qsvet:ignore mustcheck best-effort rollback while repanicking; the panic is the outcome
			_ = s.core.Abort()
			panic(p)
		}
		if err != nil {
			//qsvet:ignore mustcheck best-effort rollback; fn's error is what the caller must see
			_ = s.core.Abort()
			return
		}
		err = s.core.Commit()
	}()
	return fn(&Tx{s: s})
}

// View runs fn in a transaction expected to be read-only; it commits so the
// paper's read-locking protocol completes, and aborts on error. With
// Options.MVCC, Snapshot is the cheaper consistent read.
func (s *Store) View(fn func(tx *Tx) error) error {
	return s.Update(fn)
}

// ErrSnapshotReadOnly is returned by write entry points used inside a
// Snapshot session.
var ErrSnapshotReadOnly = core.ErrSnapshotReadOnly

// Snapshot runs fn in a read-only snapshot session (requires
// Options.MVCC): every read sees the state as of one consistent commit
// point no matter what commits concurrently through other sessions, and no
// page locks are ever taken. Write entry points fail with
// ErrSnapshotReadOnly. This is also the online-backup primitive: read the
// whole object graph inside one Snapshot while writers proceed, and the
// copy is transaction-consistent.
func (s *Store) Snapshot(fn func(tx *Tx) error) error {
	if s.inTx {
		return errors.New("quickstore: Snapshot inside a transaction")
	}
	if err := s.core.BeginSnapshot(); err != nil {
		return err
	}
	s.inTx = true
	defer func() { s.inTx = false }()
	ferr := fn(&Tx{s: s})
	if err := s.core.EndSnapshot(); err != nil && ferr == nil {
		return err
	}
	return ferr
}

// Cluster groups allocations onto shared pages.
type Cluster = core.Cluster

// NewCluster starts a placement cursor.
func (tx *Tx) NewCluster() *Cluster { return tx.s.core.NewCluster() }

// Alloc creates an object of size bytes whose embedded references live at
// the given byte offsets (8-byte aligned). The object is zeroed.
func (tx *Tx) Alloc(cl *Cluster, size int, refOffsets []int) (Ref, error) {
	return tx.s.core.Alloc(cl, size, refOffsets)
}

// AllocLarge creates a multi-page object of size bytes containing no
// references (bulk data); the Ref addresses its first byte.
func (tx *Tx) AllocLarge(cl *Cluster, size uint64) (Ref, error) {
	return tx.s.core.AllocLarge(cl, size)
}

// SetRoot names a persistent entry point.
func (tx *Tx) SetRoot(name string, r Ref) error { return tx.s.core.SetRoot(name, r) }

// Root resolves a persistent entry point.
func (tx *Tx) Root(name string) (Ref, error) { return tx.s.core.Root(name) }

// ReadU8 loads one byte at r (faulting the page in if needed).
func (tx *Tx) ReadU8(r Ref) (byte, error) { return tx.s.core.Space().ReadU8(r) }

// ReadU32 loads a 32-bit little-endian integer at r.
func (tx *Tx) ReadU32(r Ref) (uint32, error) { return tx.s.core.Space().ReadU32(r) }

// ReadU64 loads a 64-bit little-endian integer at r.
func (tx *Tx) ReadU64(r Ref) (uint64, error) { return tx.s.core.Space().ReadU64(r) }

// ReadRef loads an embedded reference at r.
func (tx *Tx) ReadRef(r Ref) (Ref, error) {
	v, err := tx.s.core.Space().ReadU64(r)
	return Ref(v), err
}

// ReadBytes fills buf from r.
func (tx *Tx) ReadBytes(r Ref, buf []byte) error { return tx.s.core.Space().ReadInto(r, buf) }

// WriteU8 stores one byte at r (write-faulting for recovery and locking).
func (tx *Tx) WriteU8(r Ref, v byte) error { return tx.s.core.Space().WriteU8(r, v) }

// WriteU32 stores a 32-bit integer at r.
func (tx *Tx) WriteU32(r Ref, v uint32) error { return tx.s.core.Space().WriteU32(r, v) }

// WriteU64 stores a 64-bit integer at r.
func (tx *Tx) WriteU64(r Ref, v uint64) error { return tx.s.core.Space().WriteU64(r, v) }

// WriteRef stores an embedded reference at r. The offset of r within its
// object must have been declared in Alloc's refOffsets, or the pointer will
// be invisible to swizzling and mapping maintenance.
func (tx *Tx) WriteRef(r Ref, v Ref) error { return tx.s.core.Space().WriteU64(r, uint64(v)) }

// WriteBytes stores data at r.
func (tx *Tx) WriteBytes(r Ref, data []byte) error { return tx.s.core.Space().WriteBytes(r, data) }

// Delete removes the small object at r. Its page space is not reused and
// outstanding references dangle (the paper's unchecked-reference trade-off,
// Section 4.5.2).
func (tx *Tx) Delete(r Ref) error { return tx.s.core.Delete(r) }

// LargeSize returns the byte size of the multi-page object at r.
func (tx *Tx) LargeSize(r Ref) (uint64, error) { return tx.s.core.LargeSize(r) }

// WriteLarge bulk-loads data into the multi-page object at r.
func (tx *Tx) WriteLarge(r Ref, data []byte, off uint64) error {
	return tx.s.core.LargeWrite(r, data, off)
}

// Stats summarizes the virtual-memory and I/O activity of the session.
type Stats struct {
	Faults       int64 // protection violations handled
	Accesses     int64 // loads/stores issued through the space
	ClientReads  int64 // page-shipping requests to the server
	DiskReads    int64 // server buffer misses
	SwizzledPtrs int64 // pointers rewritten due to frame collisions
	MmapCalls    int64 // protection/mapping changes
	MappedPages  int   // page descriptors in the current mapping
	Relocations  int64 // page ranges assigned new addresses
	LogRecords   int64 // log records generated
	// Prefetcher activity (zero unless Options.Prefetch is on).
	PrefetchIssued int64 // pages handed to the prefetcher
	PrefetchHits   int64 // faults satisfied by a pre-read frame
	PrefetchWasted int64 // pre-read frames dropped before any use
	SimulatedMs    float64
}

// Stats reports the session's counters.
func (s *Store) Stats() Stats {
	snap := s.clock.Snapshot()
	return Stats{
		Faults:       s.core.Space().Faults(),
		Accesses:     s.core.Space().Accesses(),
		ClientReads:  snap.Count(sim.CtrClientRead),
		DiskReads:    snap.Count(sim.CtrServerDiskRead),
		SwizzledPtrs: snap.Count(sim.CtrSwizzledPtr),
		MmapCalls:    snap.Count(sim.CtrMmapCall),
		MappedPages:  s.core.DescCount(),
		Relocations:  s.core.Relocations(),
		LogRecords:   snap.Count(sim.CtrLogRecord),
		PrefetchIssued: snap.Count(sim.CtrPrefetchIssued),
		PrefetchHits:   snap.Count(sim.CtrPrefetchHit),
		PrefetchWasted: snap.Count(sim.CtrPrefetchWasted),
		SimulatedMs:    snap.ElapsedMicros() / 1000,
	}
}

// ServerStats fetches the embedded page server's statistics snapshot
// (the OpStats protocol op): pool occupancy and hit rates, log volume,
// disk I/O, and pages served to the prefetcher.
func (s *Store) ServerStats() (*esm.ServerStats, error) {
	return s.client.ServerStats()
}

// DropCaches empties the client and server pools, making the next accesses
// cold (useful to observe faulting behaviour).
func (s *Store) DropCaches() error {
	if s.inTx {
		return errors.New("quickstore: DropCaches inside a transaction")
	}
	s.client.DropCaches()
	return s.srv.DropCaches()
}

// FrameOf formats a reference for diagnostics.
func FrameOf(r Ref) string {
	return fmt.Sprintf("frame %#x + %d", uint64(vmem.Addr(r).FrameBase()), vmem.Addr(r).Offset())
}
