// Package bench holds the repository-level benchmark suite: one benchmark
// per table and figure of the paper's evaluation (driving the same harness
// as cmd/oo7bench) plus real micro-benchmarks of the implementation's hot
// paths.
//
// The table/figure benchmarks report two kinds of numbers:
//   - ns/op etc.: real Go time to execute the workload in this process;
//   - sim-ms-*: the deterministic simulated 1994 response times whose
//     *shape* reproduces the paper (see DESIGN.md §6 and EXPERIMENTS.md).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The full paper-scale (small OO7 database) run is the default; it takes a
// few seconds per benchmark. Pass -short to use the reduced configuration.
package bench

import (
	"testing"

	"quickstore/internal/btree"
	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/harness"
	"quickstore/internal/oo7"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
	"quickstore/internal/wal"
)

func params(b *testing.B) oo7.Params {
	if testing.Short() {
		return oo7.SmallTest()
	}
	return oo7.Small()
}

// buildEnvs builds one OO7 database per system (outside the timer).
func buildEnvs(b *testing.B, p oo7.Params) map[harness.System]*harness.Env {
	b.Helper()
	envs := map[harness.System]*harness.Env{}
	for _, sys := range harness.AllSystems {
		env, err := harness.Build(sys, p)
		if err != nil {
			b.Fatal(err)
		}
		envs[sys] = env
	}
	return envs
}

// benchOps runs the named operations cold on every system b.N times and
// reports both real time and the simulated cold milliseconds per system.
func benchOps(b *testing.B, names []string) {
	p := params(b)
	envs := buildEnvs(b, p)
	ops := harness.Ops(p)
	simMs := map[harness.System]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			for _, sys := range harness.AllSystems {
				m, err := envs[sys].RunColdHot(ops[name], harness.SessionOpts{})
				if err != nil {
					b.Fatal(err)
				}
				simMs[sys] += m.ColdMs
			}
		}
	}
	b.StopTimer()
	for sys, total := range simMs {
		b.ReportMetric(total/float64(b.N), "sim-ms-"+sys.String())
	}
}

// --- One benchmark per paper table/figure -----------------------------------

// BenchmarkTable2DatabaseSizes regenerates the three databases and reports
// their sizes (Table 2).
func BenchmarkTable2DatabaseSizes(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		envs := buildEnvs(b, p)
		b.ReportMetric(envs[harness.SysQS].SizeMB(), "MB-QS")
		b.ReportMetric(envs[harness.SysE].SizeMB(), "MB-E")
		b.ReportMetric(envs[harness.SysQSB].SizeMB(), "MB-QS-B")
	}
}

// BenchmarkFig8SmallColdTraversals reproduces Figure 8 / Table 3.
func BenchmarkFig8SmallColdTraversals(b *testing.B) {
	benchOps(b, []string{"T1", "T6", "T7", "T8", "T9"})
}

// BenchmarkFig9SmallColdQueries reproduces Figure 9 / Table 4.
func BenchmarkFig9SmallColdQueries(b *testing.B) {
	benchOps(b, []string{"Q1", "Q2", "Q3", "Q4", "Q5"})
}

// BenchmarkTable5FaultCost reproduces Table 5: average per-fault cost of
// the cold T1 traversal, reported per system.
func BenchmarkTable5FaultCost(b *testing.B) {
	p := params(b)
	envs := buildEnvs(b, p)
	ops := harness.Ops(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sys := range harness.AllSystems {
			m, err := envs[sys].RunColdHot(ops["T1"], harness.SessionOpts{})
			if err != nil {
				b.Fatal(err)
			}
			faults := m.ColdDelta.Count(sim.CtrPageFaultTrap)
			if sys == harness.SysE {
				faults = m.ColdDelta.Count(sim.CtrClientRead)
			}
			if faults > 0 {
				b.ReportMetric((m.ColdMs-m.HotMs)/float64(faults), "sim-ms/fault-"+sys.String())
			}
		}
	}
}

// BenchmarkTable6FaultBreakdown reproduces Table 6: the QS per-fault
// component decomposition on T1.
func BenchmarkTable6FaultBreakdown(b *testing.B) {
	p := params(b)
	env, err := harness.Build(harness.SysQS, p)
	if err != nil {
		b.Fatal(err)
	}
	ops := harness.Ops(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := env.RunColdHot(ops["T1"], harness.SessionOpts{})
		if err != nil {
			b.Fatal(err)
		}
		faults := float64(m.ColdDelta.Count(sim.CtrPageFaultTrap))
		b.ReportMetric(m.ColdDelta.Micros(sim.CtrMinFault)/1000/faults, "sim-ms/fault-min")
		b.ReportMetric(m.ColdDelta.Micros(sim.CtrPageFaultTrap)/1000/faults, "sim-ms/fault-trap")
		b.ReportMetric(m.ColdDelta.Micros(sim.CtrMmapCall)/1000/faults, "sim-ms/fault-mmap")
		b.ReportMetric((m.ColdDelta.Micros(sim.CtrMapEntry)+m.ColdDelta.Micros(sim.CtrSwizzledPtr))/1000/faults, "sim-ms/fault-swizzle")
	}
}

// BenchmarkFig10SmallUpdates reproduces Figure 10 (T2/T3 response times).
func BenchmarkFig10SmallUpdates(b *testing.B) {
	benchOps(b, []string{"T2A", "T2B", "T2C", "T3A", "T3B", "T3C"})
}

// BenchmarkFig11CommitBreakdown reproduces Figure 11: T2A commit phases.
func BenchmarkFig11CommitBreakdown(b *testing.B) {
	p := params(b)
	env, err := harness.Build(harness.SysQS, p)
	if err != nil {
		b.Fatal(err)
	}
	ops := harness.Ops(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := env.RunColdHot(ops["T2A"], harness.SessionOpts{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.ColdDelta.Micros(sim.CtrPageDiff)/1000+m.ColdDelta.Micros(sim.CtrDiffByte)/1000, "sim-ms-diff")
		b.ReportMetric(m.ColdDelta.Micros(sim.CtrMapUpdate)/1000, "sim-ms-mapupd")
		b.ReportMetric(m.ColdDelta.Micros(sim.CtrCommitFlushPage)/1000, "sim-ms-flush")
	}
}

// benchHotOps reports hot (in-memory) simulated times per system.
func benchHotOps(b *testing.B, names []string) {
	p := params(b)
	envs := buildEnvs(b, p)
	ops := harness.Ops(p)
	simMs := map[harness.System]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			for _, sys := range harness.AllSystems {
				m, err := envs[sys].RunColdHot(ops[name], harness.SessionOpts{})
				if err != nil {
					b.Fatal(err)
				}
				simMs[sys] += m.HotMs
			}
		}
	}
	b.StopTimer()
	for sys, total := range simMs {
		b.ReportMetric(total/float64(b.N), "sim-hot-ms-"+sys.String())
	}
}

// BenchmarkFig12SmallHotTraversals reproduces Figure 12.
func BenchmarkFig12SmallHotTraversals(b *testing.B) {
	benchHotOps(b, []string{"T1", "T6", "T7", "T8", "T9"})
}

// BenchmarkFig13SmallHotQueries reproduces Figure 13.
func BenchmarkFig13SmallHotQueries(b *testing.B) {
	benchHotOps(b, []string{"Q1", "Q2", "Q3", "Q4", "Q5"})
}

// BenchmarkTable7HotProfile reproduces Table 7: hot T1, reporting the EPVM
// share of E's time and the malloc share of QS's.
func BenchmarkTable7HotProfile(b *testing.B) {
	p := params(b)
	envs := buildEnvs(b, p)
	ops := harness.Ops(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs, err := envs[harness.SysQS].RunColdHot(ops["T1"], harness.SessionOpts{})
		if err != nil {
			b.Fatal(err)
		}
		e, err := envs[harness.SysE].RunColdHot(ops["T1"], harness.SessionOpts{})
		if err != nil {
			b.Fatal(err)
		}
		epvmShare := (e.HotDelta.Micros(sim.CtrInterpCall) + e.HotDelta.Micros(sim.CtrResidencyCheck) +
			e.HotDelta.Micros(sim.CtrBigPtrDeref)) / e.HotDelta.ElapsedMicros()
		mallocShare := qs.HotDelta.Micros(sim.CtrIterAlloc) / qs.HotDelta.ElapsedMicros()
		b.ReportMetric(epvmShare*100, "pct-EPVM-of-E")
		b.ReportMetric(mallocShare*100, "pct-malloc-of-QS")
	}
}

// BenchmarkFig14MediumColdTraversals reproduces Figure 14 / Table 8 (run
// without -short for the true medium database; with -short a reduced
// configuration stands in).
func BenchmarkFig14MediumColdTraversals(b *testing.B) {
	benchMedium(b, []string{"T1", "T6", "T7", "T8"})
}

// BenchmarkFig15MediumColdQueries reproduces Figure 15 / Table 9.
func BenchmarkFig15MediumColdQueries(b *testing.B) {
	benchMedium(b, []string{"Q1", "Q2", "Q3", "Q4", "Q5"})
}

// BenchmarkFig16MediumUpdates reproduces Figure 16.
func BenchmarkFig16MediumUpdates(b *testing.B) {
	benchMedium(b, []string{"T2A", "T2B", "T3A"})
}

func mediumParams(b *testing.B) oo7.Params {
	if testing.Short() {
		p := oo7.SmallTest()
		p.NumAtomicPerComp = 40
		return p
	}
	// The full medium database (100k atomic parts) takes minutes to build
	// three times over; the benchmark default scales it down while keeping
	// the paging behaviour (database larger than the client pool).
	p := oo7.Medium()
	p.NumCompPerModule = 120
	return p
}

func benchMedium(b *testing.B, names []string) {
	p := mediumParams(b)
	envs := buildEnvs(b, p)
	ops := harness.Ops(p)
	simMs := map[harness.System]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			for _, sys := range harness.AllSystems {
				m, err := envs[sys].RunColdHot(ops[name], harness.SessionOpts{})
				if err != nil {
					b.Fatal(err)
				}
				simMs[sys] += m.ColdMs
			}
		}
	}
	b.StopTimer()
	for sys, total := range simMs {
		b.ReportMetric(total/float64(b.N), "sim-ms-"+sys.String())
	}
}

// BenchmarkFig17Relocation reproduces Figure 17: T1 at 100% forced
// relocation under both policies, reported as simulated ms.
func BenchmarkFig17Relocation(b *testing.B) {
	p := params(b)
	ops := harness.Ops(p)
	for i := 0; i < b.N; i++ {
		for _, mode := range []core.RelocationMode{core.RelocCR, core.RelocOR} {
			env, err := harness.Build(harness.SysQS, p)
			if err != nil {
				b.Fatal(err)
			}
			m, err := env.RunColdHot(ops["T1"], harness.SessionOpts{
				Relocation: mode, RelocateFraction: 1.0, RelocSeed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			name := "sim-ms-CR"
			if mode == core.RelocOR {
				name = "sim-ms-OR"
			}
			b.ReportMetric(m.ColdMs, name)
		}
	}
}

// BenchmarkPrefetchColdT1 measures the mapping-object prefetch extension:
// cold T1 on QuickStore with the prefetcher off and on, reporting both
// simulated response times plus the demand-I/O counts, so the overlap win
// (and any regression in it) shows up in benchmark history.
func BenchmarkPrefetchColdT1(b *testing.B) {
	p := params(b)
	env, err := harness.Build(harness.SysQS, p)
	if err != nil {
		b.Fatal(err)
	}
	ops := harness.Ops(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := env.RunColdHot(ops["T1"], harness.SessionOpts{})
		if err != nil {
			b.Fatal(err)
		}
		on, err := env.RunColdHot(ops["T1"], harness.SessionOpts{Prefetch: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(off.ColdMs, "sim-ms-off")
		b.ReportMetric(on.ColdMs, "sim-ms-on")
		b.ReportMetric(float64(off.ColdIOs()), "demand-IOs-off")
		b.ReportMetric(float64(on.ColdIOs()), "demand-IOs-on")
	}
}

// --- Real micro-benchmarks of the implementation ----------------------------

// BenchmarkVmemRead measures a hot protected load (the QS dereference).
func BenchmarkVmemRead(b *testing.B) {
	clock := sim.NewClock(sim.CostModel{})
	sp := vmem.NewSpace(0x10000000, 16, clock)
	data := make([]byte, vmem.FrameSize)
	if err := sp.Map(0x10000000, data, vmem.ProtRead); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.ReadU64(0x10000000 + vmem.Addr(i%1000)*8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultPath measures a full QuickStore page fault (protection
// trap, page fetch from a warm server, mapping processing, remap).
func BenchmarkFaultPath(b *testing.B) {
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 4096, Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	client := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 2048, Clock: clock})
	st, err := core.New(client, core.Config{BulkLoad: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Begin(); err != nil {
		b.Fatal(err)
	}
	cl := st.NewCluster()
	refs := make([]core.Ref, 1024)
	for i := range refs {
		cl.Break()
		refs[i], err = st.Alloc(cl, 64, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		b.Fatal(err)
	}
	if err := st.Begin(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := refs[i%len(refs)]
		// Force a fault by revoking access, then dereference.
		d := st.FindDesc(ref)
		if d.FrameIdx >= 0 {
			_ = st.Space().Protect(d.Lo, vmem.ProtNone)
		}
		if _, err := st.Space().ReadU32(ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTreeInsert measures warm B-tree insertion.
func BenchmarkBTreeInsert(b *testing.B) {
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 8192})
	if err != nil {
		b.Fatal(err)
	}
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 4096})
	if err := c.Begin(); err != nil {
		b.Fatal(err)
	}
	tr, err := btree.Create(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(btree.IntKey(int64(i)), esm.OID{Page: disk.PageID(i + 2), File: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTreeLookup measures warm B-tree point lookups.
func BenchmarkBTreeLookup(b *testing.B) {
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 8192})
	if err != nil {
		b.Fatal(err)
	}
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 4096})
	if err := c.Begin(); err != nil {
		b.Fatal(err)
	}
	tr, err := btree.Create(c)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100_000
	for i := 0; i < n; i++ {
		if err := tr.Insert(btree.IntKey(int64(i)), esm.OID{Page: disk.PageID(i + 2), File: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Lookup(btree.IntKey(int64(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageDiff measures the page-diffing log generator on a sparsely
// modified page (the T2A pattern).
func BenchmarkPageDiff(b *testing.B) {
	old := make([]byte, disk.PageSize)
	cur := make([]byte, disk.PageSize)
	for i := range old {
		old[i] = byte(i)
		cur[i] = byte(i)
	}
	cur[100] ^= 1
	cur[104] ^= 1
	cur[6000] ^= 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs := core.DiffRegionsForTest(old, cur, wal.HeaderBytes)
		if len(regs) != 2 {
			b.Fatalf("regions = %d", len(regs))
		}
	}
}

// BenchmarkOO7Generate measures full database generation (QS, reduced
// configuration) — the bulk-load path end to end.
func BenchmarkOO7Generate(b *testing.B) {
	p := oo7.SmallTest()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Build(harness.SysQS, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtrasFullOO7 measures the beyond-the-paper OO7 operations
// (Q6-Q8 and the structural modifications) on QuickStore.
func BenchmarkExtrasFullOO7(b *testing.B) {
	p := params(b)
	env, err := harness.Build(harness.SysQS, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := env.Session(harness.SessionOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := oo7.Q6(db); err != nil {
			b.Fatal(err)
		}
		if _, err := oo7.Q7(db, p); err != nil {
			b.Fatal(err)
		}
		if _, err := oo7.Q8(db, p, 31); err != nil {
			b.Fatal(err)
		}
		if _, err := oo7.StructuralInsert(db, p, 5, 37); err != nil {
			b.Fatal(err)
		}
		if _, err := oo7.StructuralDelete(db); err != nil {
			b.Fatal(err)
		}
	}
}
